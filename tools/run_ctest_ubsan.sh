#!/bin/sh
# Build the full test suite under UndefinedBehaviorSanitizer and
# run it.  The recovery stack shifts indices and packs edge keys
# ((min << 32) | max in the ground-truth cut set), the detector
# counts missed pairs with unsigned arithmetic, and the watchdog
# compares floating-point residuals -- a UBSan pass (signed
# overflow, shift width, bad casts, misaligned access) over the
# whole suite complements the ASan memory-safety run and the TSan
# determinism run.  -fno-sanitize-recover=all turns any finding
# into a hard test failure instead of a log line.
#
# Usage: tools/run_ctest_ubsan.sh [build-dir]  (default: build-ubsan)
set -eu

repo=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-"$repo/build-ubsan"}

cmake -S "$repo" -B "$build" -DDPC_SANITIZE=undefined \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      ${DPC_CMAKE_ARGS:-}
cmake --build "$build" -j"$(nproc)"

UBSAN_OPTIONS=${UBSAN_OPTIONS:-"halt_on_error=1:print_stacktrace=1"} \
    ctest --test-dir "$build" --output-on-failure -j"$(nproc)"
