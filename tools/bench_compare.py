#!/usr/bin/env python3
"""Compare a bench JSON run against a committed baseline.

Usage: bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]

Both files are arrays of flat records (tools/bench_json.hh).  A
record's identity is the tuple of its non-metric fields; records are
matched by identity and their metrics compared:

  ns_per_node, ms_per_round   lower is better; FAIL when current
                              exceeds baseline by more than the
                              threshold (default 15%; calibrated to
                              the run-to-run drift of a shared
                              single-core host -- identical binaries
                              measured minutes apart differ by up to
                              ~13% even under a best-of-N minimum
                              estimator, see bench/common.hh)
  util_frac_of_opt            higher is better; FAIL when current
                              drops more than 1% below baseline
  speedup_x                   higher is better; FAIL when current
                              falls below baseline by more than
                              the perf threshold (the ratio of two
                              timings drifts like a timing)
  locality                    higher is better; FAIL when current
                              drops more than 0.02 (absolute)
                              below baseline -- the metric is a
                              deterministic edge count ratio, so
                              any real drop means the layout loop
                              regressed, not the host
  warm_frac                   FAIL only above the 0.25 acceptance
                              bar (the metric is a ratio of two
                              round counts and jitters at the
                              bottom; the bar is what matters)
  rounds_per_sec              higher is better; FAIL when current
                              falls below baseline by more than
                              the perf threshold (a rate is an
                              inverted timing and drifts like one)
  bytes_per_round             lower is better; FAIL on any growth
                              past 0.1% -- cut-edge wire traffic
                              is deterministic in topology + shard
                              plan, so real growth means the
                              frames got fatter or the layout cut
                              got worse, never host noise
  frames_per_round            lower is better; FAIL on any growth
                              past 0.1% (deterministic, like
                              bytes_per_round: more frames means
                              the batch coalescing regressed)
  header_overhead_frac        lower is better; FAIL on any growth
                              past 0.1% (frame-header bytes as a
                              fraction of wire bytes; growth means
                              batches got smaller or the packer
                              started splitting needlessly)
  steady_bytes_per_round,     lower is better; FAIL on any growth
  steady_frames_per_round     past 0.1% (quiesced wire traffic is
                              deterministic -- growth means frame
                              suppression or delta coding
                              regressed)
  steady_rounds_per_sec       higher is better; FAIL below the
                              perf threshold (a rate)
  step_rounds_to_reconverge   lower is better; FAIL on ANY growth
                              (deterministic round count of the
                              warm-started budget step)

Steady rows are additionally held to absolute cross-record bars
against the dense (mode=sharded, overlap=on, same proto/n/shards)
row of the CURRENT run: steady_bytes_per_round must be at most
dense bytes_per_round / 8 and steady_rounds_per_sec at least 4x
dense rounds_per_sec -- the steady-state sparsity claim itself, so
a stale baseline cannot mask losing it.

A baseline record with no current match is a FAIL (a benchmark
disappeared); new current records pass (coverage grew).  Exit code
is 1 on any failure, 0 otherwise.
"""

import argparse
import json
import sys

# Fields that carry measurements; everything else is identity.
PERF_METRICS = ("ns_per_node", "ns_per_edge", "ms_per_round")
OTHER_METRICS = (
    "util_frac_of_opt",
    "speedup_x",
    "locality",
    "warm_frac",
    "peak_rss_mb",
    "rounds",
    "cold_rounds",
    "warm_rounds",
    "total_power_w",
    "observed_loss",
    "worst_residual_w",
    "quiet_rounds",
    "comp_ms",
    "comm_ms",
    "iters",
    "availability",
    "util_frac_during",
    "rounds_to_recover",
    "repairs",
    "refederations",
    "escalations",
    "nodes_failed",
    "nodes_rejoined",
    "false_positives",
    "rounds_per_sec",
    "bytes_per_round",
    "frames_per_round",
    "header_overhead_frac",
    "cut_edges",
    "cut_frac",
    "retransmits",
    "retrans_bytes",
    "duplicates",
    "edges_suppressed",
    "phase_send_ms",
    "phase_interior_ms",
    "phase_drain_ms",
    "phase_boundary_ms",
    "detection_rounds",
    "recovery_rounds",
    "recovery_ms",
    "stale_epoch_frames",
    "gaveup_frames",
    "converge_rounds",
    "hold_rounds",
    "steady_bytes_per_round",
    "steady_frames_per_round",
    "steady_rounds_per_sec",
    "step_rounds_to_reconverge",
    "suppressed_frames",
    "delta_frames",
    "wake_messages",
)
METRICS = set(PERF_METRICS) | set(OTHER_METRICS)

WARM_FRAC_BAR = 0.25
UTIL_FRAC_SLACK = 0.01
LOCALITY_SLACK = 0.02
WIRE_BYTES_SLACK = 0.001
# Absolute bars for bench == "wire_recovery" rows (applied to the
# CURRENT run, baseline or not): recovery must deliver every
# survivor, detect within the checkpoint window, and roll back no
# deeper than the ring covers.  These mirror the bars the bench
# binary itself enforces, so a stale baseline cannot mask a
# regression.
AVAILABILITY_BAR = 0.999
DETECTION_ROUNDS_BAR = 8
RECOVERY_ROUNDS_BAR = 8
# The steady-state sparsity claim, held against the CURRENT run's
# own dense row (see module docstring).
STEADY_BYTES_DIVISOR = 8.0
STEADY_RATE_MULTIPLE = 4.0


def identity(record):
    return tuple(
        sorted((k, v) for k, v in record.items() if k not in METRICS)
    )


def load(path):
    with open(path) as fh:
        records = json.load(fh)
    if not isinstance(records, list):
        raise SystemExit(f"{path}: expected a JSON array of records")
    table = {}
    for rec in records:
        table[identity(rec)] = rec
    return table


def describe(key):
    return " ".join(f"{k}={v}" for k, v in key)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="allowed fractional perf regression (default 0.15)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    curr = load(args.current)

    failures = []
    compared = 0
    for key, brec in sorted(base.items()):
        crec = curr.get(key)
        if crec is None:
            failures.append(f"MISSING  {describe(key)}")
            continue
        for metric in PERF_METRICS:
            if metric not in brec or metric not in crec:
                continue
            b, c = float(brec[metric]), float(crec[metric])
            compared += 1
            if b > 0.0 and c > b * (1.0 + args.threshold):
                failures.append(
                    f"PERF     {describe(key)}: {metric} "
                    f"{b:.4g} -> {c:.4g} "
                    f"(+{100.0 * (c / b - 1.0):.1f}%)"
                )
        if "util_frac_of_opt" in brec and "util_frac_of_opt" in crec:
            b = float(brec["util_frac_of_opt"])
            c = float(crec["util_frac_of_opt"])
            compared += 1
            if c < b - UTIL_FRAC_SLACK:
                failures.append(
                    f"QUALITY  {describe(key)}: util_frac_of_opt "
                    f"{b:.4f} -> {c:.4f}"
                )
        if "speedup_x" in brec and "speedup_x" in crec:
            b = float(brec["speedup_x"])
            c = float(crec["speedup_x"])
            compared += 1
            if b > 0.0 and c < b * (1.0 - args.threshold):
                failures.append(
                    f"SPEEDUP  {describe(key)}: speedup_x "
                    f"{b:.4g} -> {c:.4g} "
                    f"(-{100.0 * (1.0 - c / b):.1f}%)"
                )
        if "locality" in brec and "locality" in crec:
            b = float(brec["locality"])
            c = float(crec["locality"])
            compared += 1
            if c < b - LOCALITY_SLACK:
                failures.append(
                    f"LOCALITY {describe(key)}: locality "
                    f"{b:.4f} -> {c:.4f}"
                )
        if "rounds_per_sec" in brec and "rounds_per_sec" in crec:
            b = float(brec["rounds_per_sec"])
            c = float(crec["rounds_per_sec"])
            compared += 1
            if b > 0.0 and c < b * (1.0 - args.threshold):
                failures.append(
                    f"RATE     {describe(key)}: rounds_per_sec "
                    f"{b:.4g} -> {c:.4g} "
                    f"(-{100.0 * (1.0 - c / b):.1f}%)"
                )
        if (
            "steady_rounds_per_sec" in brec
            and "steady_rounds_per_sec" in crec
        ):
            b = float(brec["steady_rounds_per_sec"])
            c = float(crec["steady_rounds_per_sec"])
            compared += 1
            if b > 0.0 and c < b * (1.0 - args.threshold):
                failures.append(
                    f"RATE     {describe(key)}: "
                    f"steady_rounds_per_sec "
                    f"{b:.4g} -> {c:.4g} "
                    f"(-{100.0 * (1.0 - c / b):.1f}%)"
                )
        if (
            "step_rounds_to_reconverge" in brec
            and "step_rounds_to_reconverge" in crec
        ):
            b = float(brec["step_rounds_to_reconverge"])
            c = float(crec["step_rounds_to_reconverge"])
            compared += 1
            if c > b:
                failures.append(
                    f"WARMSTART {describe(key)}: "
                    f"step_rounds_to_reconverge {b:.0f} -> {c:.0f}"
                )
        for metric in (
            "bytes_per_round",
            "frames_per_round",
            "header_overhead_frac",
            "steady_bytes_per_round",
            "steady_frames_per_round",
        ):
            if metric not in brec or metric not in crec:
                continue
            b = float(brec[metric])
            c = float(crec[metric])
            compared += 1
            if c > b * (1.0 + WIRE_BYTES_SLACK):
                failures.append(
                    f"WIRE     {describe(key)}: {metric} "
                    f"{b:.4g} -> {c:.4g} "
                    f"(+{100.0 * (c / b - 1.0):.1f}%)"
                )
        if "warm_frac" in crec:
            c = float(crec["warm_frac"])
            compared += 1
            if c > WARM_FRAC_BAR:
                failures.append(
                    f"WARMSTART {describe(key)}: warm_frac "
                    f"{c:.3f} > {WARM_FRAC_BAR}"
                )

    # Absolute steady-state bars: every steady row in the CURRENT
    # run must beat its own dense twin by the claimed margins,
    # matched baseline or not.
    dense_rows = {
        (crec.get("proto"), crec.get("n"), crec.get("shards")): crec
        for crec in curr.values()
        if crec.get("bench") == "wire_shard"
        and crec.get("mode") == "sharded"
        and crec.get("overlap") == "on"
    }
    for key, crec in sorted(curr.items()):
        if (
            crec.get("bench") != "wire_shard"
            or crec.get("mode") != "steady"
        ):
            continue
        dense = dense_rows.get(
            (crec.get("proto"), crec.get("n"), crec.get("shards"))
        )
        if dense is None:
            failures.append(
                f"STEADY   {describe(key)}: no dense overlap=on "
                f"row to compare against"
            )
            continue
        compared += 1
        sb = float(crec["steady_bytes_per_round"])
        db = float(dense["bytes_per_round"])
        if sb > db / STEADY_BYTES_DIVISOR:
            failures.append(
                f"STEADY   {describe(key)}: steady_bytes_per_round "
                f"{sb:.4g} > dense {db:.4g} / "
                f"{STEADY_BYTES_DIVISOR:.0f}"
            )
        sr = float(crec["steady_rounds_per_sec"])
        dr = float(dense["rounds_per_sec"])
        if sr < dr * STEADY_RATE_MULTIPLE:
            failures.append(
                f"STEADY   {describe(key)}: steady_rounds_per_sec "
                f"{sr:.4g} < dense {dr:.4g} x "
                f"{STEADY_RATE_MULTIPLE:.0f}"
            )

    # Absolute recovery bars: every wire_recovery row in the
    # CURRENT run must clear them, matched baseline or not.
    for key, crec in sorted(curr.items()):
        if crec.get("bench") != "wire_recovery":
            continue
        compared += 1
        if float(crec.get("availability", 1.0)) < AVAILABILITY_BAR:
            failures.append(
                f"RECOVERY {describe(key)}: availability "
                f"{float(crec['availability']):.4f} < "
                f"{AVAILABILITY_BAR}"
            )
        if float(crec.get("detection_rounds", 0)) > DETECTION_ROUNDS_BAR:
            failures.append(
                f"RECOVERY {describe(key)}: detection_rounds "
                f"{crec['detection_rounds']} > {DETECTION_ROUNDS_BAR}"
            )
        if float(crec.get("recovery_rounds", 0)) > RECOVERY_ROUNDS_BAR:
            failures.append(
                f"RECOVERY {describe(key)}: recovery_rounds "
                f"{crec['recovery_rounds']} > {RECOVERY_ROUNDS_BAR}"
            )

    grown = len(curr.keys() - base.keys())
    print(
        f"bench_compare: {len(base)} baseline records, "
        f"{compared} comparisons, {grown} new records, "
        f"{len(failures)} failure(s)"
    )
    for line in failures:
        print(f"  {line}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
