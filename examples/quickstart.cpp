/**
 * @file
 * Quickstart: build a small cluster, cap its total power with
 * DiBA, and compare the decentralized result against the exact
 * optimum.
 *
 * This walks the core public API end to end:
 *   1. describe per-server workloads as concave throughput
 *      functions (here: the built-in NPB/HPCC profiles);
 *   2. pose an AllocationProblem (utilities + total budget);
 *   3. pick a communication topology and run DibaAllocator;
 *   4. inspect the caps and the SNP metrics.
 */

#include <iostream>

#include "alloc/diba.hh"
#include "alloc/kkt.hh"
#include "graph/topologies.hh"
#include "metrics/performance.hh"
#include "util/table.hh"
#include "workload/generator.hh"

using namespace dpc;

int
main()
{
    // 1. A 16-server cluster with a random NPB/HPCC mix.
    Rng rng(2026);
    const auto assignment = drawNpbAssignment(16, rng);

    // 2. Cap the cluster at 170 W per server on average.
    const auto prob = AllocationProblem::Builder()
                          .utilities(utilitiesOf(assignment))
                          .budgetPerNode(170.0)
                          .build();

    // 3. Decentralized allocation over a ring overlay: each server
    //    only ever talks to its two ring neighbours.
    DibaAllocator diba(makeRing(16));
    const auto result = diba.allocate(prob);

    // Exact optimum for reference (needs global knowledge).
    const auto oracle = solveKkt(prob);

    // 4. Report.
    std::cout << "DiBA converged after " << result.iterations
              << " rounds; total power "
              << Table::num(result.totalPower(), 1) << " W of "
              << Table::num(prob.budget, 1) << " W budget\n\n";

    Table table({"server", "workload", "diba_cap_W",
                 "optimal_cap_W", "ANP"});
    for (std::size_t i = 0; i < assignment.size(); ++i) {
        table.addRow(
            {Table::num((long long)i), assignment[i].name,
             Table::num(result.power[i], 1),
             Table::num(oracle.power[i], 1),
             Table::num(anp(*prob.utilities[i], result.power[i]),
                        3)});
    }
    table.print(std::cout);

    const auto rep = evaluateAllocation(prob.utilities, result.power);
    const auto rep_opt =
        evaluateAllocation(prob.utilities, oracle.power);
    std::cout << "\nSNP (arith): " << Table::num(rep.snp_arith, 4)
              << "  vs optimal " << Table::num(rep_opt.snp_arith, 4)
              << "\nutility fraction of optimal: "
              << Table::num(result.utility / oracle.utility, 4)
              << "\n\nNote how compute-bound workloads (EP, HPL) "
                 "receive high caps while memory-bound ones (CG, "
                 "RA) are throttled -- with no central "
                 "coordinator.\n";
    return 0;
}
