/**
 * @file
 * Topology explorer: how does the communication overlay shape
 * DiBA's convergence and per-round communication cost?  Compares
 * the plain ring, chord-augmented rings (the paper's fault-
 * tolerance recommendation), Erdos-Renyi random graphs of rising
 * density, and the complete graph, on the same 200-server problem.
 */

#include <iostream>

#include "alloc/diba.hh"
#include "alloc/kkt.hh"
#include "graph/topologies.hh"
#include "metrics/performance.hh"
#include "net/comm_model.hh"
#include "util/table.hh"
#include "workload/generator.hh"

using namespace dpc;

namespace {

std::size_t
iterationsTo99(DibaAllocator &diba, const AllocationProblem &prob,
               double optimal)
{
    diba.reset(prob);
    for (std::size_t it = 1; it <= 60000; ++it) {
        diba.iterate();
        const double u =
            totalUtility(prob.utilities, diba.power());
        if (withinFractionOfOptimal(u, optimal, 0.99))
            return it;
    }
    return 60000;
}

} // namespace

int
main()
{
    const std::size_t n = 200;
    Rng rng(11);

    const auto prob = AllocationProblem::Builder()
                          .utilities(utilitiesOf(
                              drawNpbAssignment(n, rng)))
                          .budgetPerNode(172.0)
                          .build();
    const auto oracle = solveKkt(prob);

    struct Candidate
    {
        std::string name;
        Graph graph;
    };
    std::vector<Candidate> candidates;
    candidates.push_back({"ring", makeRing(n)});
    candidates.push_back(
        {"ring + 20 chords", makeChordalRing(n, 20, rng)});
    candidates.push_back(
        {"ring + 100 chords", makeChordalRing(n, 100, rng)});
    candidates.push_back(
        {"ER m=400", makeConnectedErdosRenyi(n, 400, rng)});
    candidates.push_back(
        {"ER m=1000", makeConnectedErdosRenyi(n, 1000, rng)});
    candidates.push_back({"complete", makeComplete(n)});

    CommModel net;
    Table table({"topology", "avg_degree", "diameter",
                 "iters_to_99%", "round_us", "total_comm_ms",
                 "packets/round"});
    for (auto &c : candidates) {
        const double avg_deg = c.graph.averageDegree();
        const auto diam = c.graph.diameter();
        const double round_us = net.dibaRoundUs(c.graph);
        const auto packets =
            CommModel::dibaPacketsPerRound(c.graph);
        DibaAllocator diba(std::move(c.graph));
        const auto iters = iterationsTo99(diba, prob,
                                          oracle.utility);
        table.addRow({c.name, Table::num(avg_deg, 1),
                      Table::num((long long)diam),
                      Table::num((long long)iters),
                      Table::num(round_us, 0),
                      Table::num(static_cast<double>(iters) *
                                     round_us / 1000.0,
                                 1),
                      Table::num((long long)packets)});
    }
    table.print(std::cout);

    std::cout
        << "\nTakeaway (Fig. 4.10): more connectivity buys fewer "
           "iterations, but each round carries more packets and a "
           "heavier per-node burst -- a few chords on the ring is "
           "the sweet spot the paper recommends for fault "
           "tolerance without a dense overlay.\n";
    return 0;
}
