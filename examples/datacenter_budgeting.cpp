/**
 * @file
 * Whole-datacenter budgeting walkthrough (the Chapter-3 pipeline):
 * split a total facility budget between computing and cooling
 * self-consistently (Algorithm 1), allocating the computing share
 * with the multiple-choice knapsack budgeter, and report the
 * resulting supply temperature, per-rack inlet margins and SNP.
 */

#include <iostream>

#include "alloc/knapsack.hh"
#include "metrics/performance.hh"
#include "thermal/total_budgeter.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "workload/generator.hh"

using namespace dpc;

int
main()
{
    const std::size_t n = 800;   // servers
    const std::size_t racks = 20; // 40 servers per rack
    const double total_budget = 160000.0; // 0.16 MW facility

    Rng rng(13);
    const auto cluster = drawSpecMixAssignment(
        n, MixKind::HomogeneousWithinServer, rng);
    const auto us = utilitiesOf(cluster);

    // Discrete-cap values for the knapsack budgeter.
    CapGrid grid;
    KnapsackBudgeter budgeter(grid);
    std::vector<std::vector<double>> values(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < grid.levels; ++j)
            values[i].push_back(
                us[i]->value(grid.capAt(j)) / us[i]->peakValue());

    // Thermal substrate: synthetic CFD-equivalent recirculation.
    const auto d = makeSyntheticRecirculation(4, 5, 0.25, rng);
    HeatModel heat(d, std::vector<double>(racks, 500.0), 24.0);
    CoolingModel::Config ccfg;
    ccfg.rated_power_w = 165.0 * static_cast<double>(n);
    CoolingModel cooling(heat, CopModel(), ccfg);
    TotalPowerBudgeter splitter(cooling);

    KnapsackResult last_alloc;
    auto allocate = [&](double b_s) {
        last_alloc = budgeter.allocate(values, b_s);
        std::vector<double> rack_power(racks, 0.0);
        for (std::size_t i = 0; i < n; ++i)
            rack_power[i / (n / racks)] += last_alloc.power[i];
        return rack_power;
    };

    const auto res = splitter.partition(total_budget, allocate);

    std::cout << "Total budget        : "
              << Table::num(total_budget / 1000.0, 1) << " kW\n"
              << "Computing power B_s : "
              << Table::num(res.b_s / 1000.0, 1) << " kW\n"
              << "Cooling power B_CRAC: "
              << Table::num(res.b_crac / 1000.0, 1) << " kW ("
              << Table::num(100.0 * res.b_crac / total_budget, 1)
              << "% of total)\n"
              << "CRAC supply temp    : "
              << Table::num(res.t_sup, 1) << " C\n"
              << "Converged in        : " << res.trace.size()
              << " self-consistency iterations\n\n";

    // Thermal check: inlet temperatures under the final layout.
    std::vector<double> rack_power(racks, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        rack_power[i / (n / racks)] += last_alloc.power[i];
    const auto inlets = heat.inletTemps(rack_power, res.t_sup);
    std::cout << "Hottest rack inlet  : "
              << Table::num(maxElement(inlets), 2)
              << " C (redline 24.00 C)\n";

    const auto rep = evaluateAllocation(us, last_alloc.power);
    std::cout << "Cluster SNP (geo)   : "
              << Table::num(rep.snp_geo, 4) << "\n"
              << "Unfairness (CoV)    : "
              << Table::num(rep.unfair, 4) << "\n\n"
              << "Every watt of the facility budget is accounted "
                 "for: computing + cooling = "
              << Table::num((res.b_s + res.b_crac) / 1000.0, 1)
              << " kW, with cooling sized exactly for the heat the "
                 "chosen caps generate.\n";
    return 0;
}
