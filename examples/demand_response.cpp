/**
 * @file
 * Demand-response scenario: a 200-server cluster rides through a
 * utility-company curtailment event.  The grid price signal cuts
 * the allowed power 12% for two minutes, then restores it.  The
 * simulation shows the caps shedding within one control step on
 * the cut (hard budget guarantee) and climbing back afterwards,
 * with the RAPL-style per-server controllers enforcing the caps
 * against metered (noisy) power.
 */

#include <iostream>

#include "cluster/sim.hh"
#include "graph/topologies.hh"
#include "util/table.hh"

using namespace dpc;

int
main()
{
    const std::size_t n = 200;
    const double nominal = 178.0 * static_cast<double>(n);
    const double curtailed = 0.88 * nominal;

    Rng rng(7);
    auto assignment = drawNpbAssignment(n, rng);

    ClusterSimConfig cfg;
    cfg.diba_rounds_per_step = 80;
    cfg.mean_job_s = 90.0; // light churn during the event
    // Curtailment window: t in [60, 180).
    ClusterSim sim(
        std::move(assignment), makeRing(n), nominal,
        DibaAllocator::Config(),
        ClusterSim::Options{
            .sim = cfg,
            .budget_schedule =
                [=](double t) {
                    return (t >= 60.0 && t < 180.0) ? curtailed
                                                    : nominal;
                },
        });

    const auto samples = sim.run(240.0);

    Table table({"t_s", "budget_kW", "allocated_kW", "consumed_kW",
                 "snp"});
    for (std::size_t i = 0; i < samples.size(); i += 15) {
        const auto &s = samples[i];
        table.addRow({Table::num(s.t, 0),
                      Table::num(s.budget / 1000.0, 2),
                      Table::num(s.allocated_power / 1000.0, 2),
                      Table::num(s.consumed_power / 1000.0, 2),
                      Table::num(s.snp, 4)});
    }
    table.print(std::cout);

    bool violated = false;
    for (const auto &s : samples)
        violated |= s.allocated_power >= s.budget;
    std::cout << "\nBudget violations during the event: "
              << (violated ? "YES" : "none")
              << "\nThe caps drop inside the announcement step at "
                 "t=60 s and recover after t=180 s; SNP dips only "
                 "as far as the curtailed optimum requires.\n";
    return 0;
}
