#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <tuple>
#include <vector>

#include "util/thread_pool.hh"

namespace dpc {
namespace {

TEST(ThreadPoolTest, ChunkBoundsPartitionTheRange)
{
    // Static boundaries c*n/chunks tile [0, n) exactly, in order,
    // with no chunk larger than ceil(n/chunks).
    for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
        for (std::size_t chunks : {1u, 2u, 3u, 8u, 13u}) {
            EXPECT_EQ(ThreadPool::chunkBegin(n, chunks, 0), 0u);
            EXPECT_EQ(ThreadPool::chunkBegin(n, chunks, chunks), n);
            for (std::size_t c = 0; c < chunks; ++c) {
                const auto b = ThreadPool::chunkBegin(n, chunks, c);
                const auto e =
                    ThreadPool::chunkBegin(n, chunks, c + 1);
                EXPECT_LE(b, e);
                EXPECT_LE(e - b, (n + chunks - 1) / chunks);
            }
        }
    }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 1003;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t, std::size_t b,
                            std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, FewerItemsThanChunksStillCovers)
{
    ThreadPool pool(8);
    std::atomic<int> sum{0};
    pool.parallelFor(3, [&](std::size_t, std::size_t b,
                            std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            sum.fetch_add(static_cast<int>(i) + 1);
    });
    EXPECT_EQ(sum.load(), 1 + 2 + 3);
}

TEST(ThreadPoolTest, EmptyRangeIsANoop)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(0, [&](std::size_t, std::size_t b,
                            std::size_t e) {
        if (b != e)
            calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, SingleChunkRunsInline)
{
    // num_chunks == 1 spawns no workers; the callback runs on the
    // calling thread over the whole range.
    ThreadPool pool(1);
    std::vector<int> data(100, 0);
    pool.parallelFor(data.size(), [&](std::size_t c, std::size_t b,
                                      std::size_t e) {
        EXPECT_EQ(c, 0u);
        for (std::size_t i = b; i < e; ++i)
            data[i] = 1;
    });
    EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0), 100);
}

TEST(ThreadPoolTest, ReusableAcrossManyRounds)
{
    // The pool must survive thousands of handoffs without losing a
    // wakeup (the generation counter guards against spurious and
    // missed notifications).
    ThreadPool pool(4);
    const std::size_t n = 256;
    std::vector<long> acc(n, 0);
    for (int round = 0; round < 2000; ++round) {
        pool.parallelFor(n, [&](std::size_t, std::size_t b,
                                std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                acc[i] += 1;
        });
    }
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(acc[i], 2000) << "index " << i;
}

TEST(ThreadPoolTest, HardwareChunksIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareChunks(), 1u);
}

TEST(ThreadPoolTest, ExplicitCutoffKeepsChunkGeometry)
{
    // The cutoff only decides who executes the chunks (caller vs
    // workers); the (chunk, begin, end) triples handed to the body
    // must be identical for every cutoff, including 0, which
    // forces the workers awake for ranges the default cutoff would
    // run inline (coarse-grained lane work).
    ThreadPool pool(4);
    const std::size_t n = 10; // far below kSerialCutoff
    using Triple = std::tuple<std::size_t, std::size_t, std::size_t>;
    const auto collect = [&](std::size_t cutoff) {
        std::mutex m;
        std::vector<Triple> triples;
        pool.parallelFor(
            n,
            [&](std::size_t c, std::size_t b, std::size_t e) {
                std::lock_guard<std::mutex> lock(m);
                triples.emplace_back(c, b, e);
            },
            cutoff);
        std::sort(triples.begin(), triples.end());
        return triples;
    };
    const auto inline_run = collect(ThreadPool::kSerialCutoff);
    const auto fanned_out = collect(0);
    EXPECT_EQ(inline_run, fanned_out);

    // And the work itself lands identically.
    std::vector<int> hits(n, 0);
    pool.parallelFor(
        n,
        [&](std::size_t, std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                ++hits[i];
        },
        0);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

} // namespace
} // namespace dpc
