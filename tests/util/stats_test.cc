#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hh"

namespace dpc {
namespace {

TEST(StatsTest, MeanOfEmptyIsZero)
{
    EXPECT_EQ(mean({}), 0.0);
}

TEST(StatsTest, MeanBasic)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(StatsTest, SumBasic)
{
    EXPECT_DOUBLE_EQ(sum({0.5, 1.5, -2.0}), 0.0);
}

TEST(StatsTest, GeomeanMatchesClosedForm)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(StatsTest, GeomeanRejectsNonPositive)
{
    EXPECT_DEATH(geomean({1.0, 0.0}), "positive");
}

TEST(StatsTest, StddevMatchesHandComputation)
{
    // Samples 2, 4, 4, 4, 5, 5, 7, 9: sample stddev = sqrt(32/7).
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, StddevOfSingletonIsZero)
{
    EXPECT_EQ(stddev({3.0}), 0.0);
}

TEST(StatsTest, CoefficientOfVariation)
{
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_NEAR(coefficientOfVariation(xs),
                std::sqrt(32.0 / 7.0) / 5.0, 1e-12);
    EXPECT_EQ(coefficientOfVariation({0.0, 0.0}), 0.0);
}

TEST(StatsTest, MinMaxElements)
{
    const std::vector<double> xs{3.0, -1.0, 7.5, 2.0};
    EXPECT_EQ(minElement(xs), -1.0);
    EXPECT_EQ(maxElement(xs), 7.5);
}

TEST(StatsTest, PercentileInterpolates)
{
    const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(StatsTest, LinspaceEndpointsAndSpacing)
{
    const auto xs = linspace(0.0, 1.0, 5);
    ASSERT_EQ(xs.size(), 5u);
    EXPECT_DOUBLE_EQ(xs.front(), 0.0);
    EXPECT_DOUBLE_EQ(xs.back(), 1.0);
    EXPECT_DOUBLE_EQ(xs[1], 0.25);
}

TEST(OnlineStatsTest, MatchesBatchStatistics)
{
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    OnlineStats acc;
    for (double x : xs)
        acc.add(x);
    EXPECT_EQ(acc.count(), xs.size());
    EXPECT_NEAR(acc.mean(), mean(xs), 1e-12);
    EXPECT_NEAR(acc.stddev(), stddev(xs), 1e-12);
    EXPECT_EQ(acc.min(), 2.0);
    EXPECT_EQ(acc.max(), 9.0);
}

TEST(OnlineStatsTest, ResetClearsState)
{
    OnlineStats acc;
    acc.add(5.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
}

} // namespace
} // namespace dpc
