#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace dpc {
namespace {

TEST(TableTest, NumFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
}

TEST(TableTest, PrintAlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream oss;
    t.print(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("---"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, CsvHasCommasAndNoPadding)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(TableTest, RowWidthMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "width");
}

} // namespace
} // namespace dpc
