#include <gtest/gtest.h>

#include <cmath>

#include "util/fit.hh"
#include "util/rng.hh"

namespace dpc {
namespace {

TEST(FitTest, PolyfitRecoversExactQuadratic)
{
    const std::vector<double> xs{-2, -1, 0, 1, 2, 3};
    std::vector<double> ys;
    for (double x : xs)
        ys.push_back(1.5 - 2.0 * x + 0.5 * x * x);
    const auto c = polyfit(xs, ys, 2);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_NEAR(c[0], 1.5, 1e-9);
    EXPECT_NEAR(c[1], -2.0, 1e-9);
    EXPECT_NEAR(c[2], 0.5, 1e-9);
}

TEST(FitTest, PolyfitIsLeastSquaresUnderNoise)
{
    Rng rng(3);
    std::vector<double> xs, ys;
    for (int i = 0; i < 200; ++i) {
        const double x = rng.uniform(-1.0, 1.0);
        xs.push_back(x);
        ys.push_back(2.0 + 3.0 * x + rng.normal(0.0, 0.01));
    }
    const auto c = polyfit(xs, ys, 1);
    EXPECT_NEAR(c[0], 2.0, 0.01);
    EXPECT_NEAR(c[1], 3.0, 0.01);
}

TEST(FitTest, PolyvalHornerMatchesDirect)
{
    const std::vector<double> c{1.0, -1.0, 2.0};
    EXPECT_DOUBLE_EQ(polyval(c, 3.0), 1.0 - 3.0 + 18.0);
    EXPECT_DOUBLE_EQ(polyval({}, 5.0), 0.0);
}

TEST(FitTest, GeneralBasisFit)
{
    // y = 2 sin(x) + 0.5 cos(x).
    std::vector<double> xs, ys;
    for (int i = 0; i < 50; ++i) {
        const double x = 0.13 * i;
        xs.push_back(x);
        ys.push_back(2.0 * std::sin(x) + 0.5 * std::cos(x));
    }
    std::vector<std::function<double(const double &)>> basis{
        [](const double &x) { return std::sin(x); },
        [](const double &x) { return std::cos(x); },
    };
    const auto w = linearLeastSquares(xs, ys, basis);
    EXPECT_NEAR(w[0], 2.0, 1e-9);
    EXPECT_NEAR(w[1], 0.5, 1e-9);
}

TEST(FitTest, UnderdeterminedFitPanics)
{
    const std::vector<double> xs{1.0};
    const std::vector<double> ys{1.0};
    EXPECT_DEATH(polyfit(xs, ys, 2), "underdetermined");
}

TEST(FitTest, RSquaredPerfectAndBaseline)
{
    const std::vector<double> obs{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(rSquared(obs, obs), 1.0);
    // Predicting the mean gives R^2 = 0.
    const std::vector<double> pred{2.0, 2.0, 2.0};
    EXPECT_NEAR(rSquared(pred, obs), 0.0, 1e-12);
}

} // namespace
} // namespace dpc
