#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hh"
#include "util/stats.hh"

namespace dpc {
namespace {

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, ReseedRestartsSequence)
{
    Rng a(7);
    const double first = a.uniform();
    a.uniform();
    a.seed(7);
    EXPECT_EQ(a.uniform(), first);
}

TEST(RngTest, UniformStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(2.0, 5.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(RngTest, UniformIntCoversRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsApproximate)
{
    Rng rng(5);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(rng.normal(10.0, 2.0));
    EXPECT_NEAR(mean(xs), 10.0, 0.1);
    EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(RngTest, ExponentialMeanApproximate)
{
    Rng rng(9);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i)
        xs.push_back(rng.exponential(0.5));
    EXPECT_NEAR(mean(xs), 2.0, 0.1);
}

TEST(RngTest, PoissonMeanApproximate)
{
    Rng rng(13);
    double acc = 0.0;
    for (int i = 0; i < 20000; ++i)
        acc += static_cast<double>(rng.poisson(4.0));
    EXPECT_NEAR(acc / 20000.0, 4.0, 0.1);
}

TEST(RngTest, BernoulliFrequencyApproximate)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(RngTest, ChoicePicksEveryElementEventually)
{
    Rng rng(23);
    const std::vector<int> items{1, 2, 3};
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 3000; ++i)
        ++counts[static_cast<std::size_t>(rng.choice(items))];
    EXPECT_GT(counts[1], 0);
    EXPECT_GT(counts[2], 0);
    EXPECT_GT(counts[3], 0);
}

TEST(RngTest, ShufflePreservesMultiset)
{
    Rng rng(29);
    std::vector<int> xs{1, 2, 3, 4, 5, 6};
    auto ys = xs;
    rng.shuffle(ys);
    std::sort(ys.begin(), ys.end());
    EXPECT_EQ(xs, ys);
}

TEST(RngTest, IndexRejectsEmpty)
{
    Rng rng(1);
    EXPECT_DEATH(rng.index(0), "empty");
}

} // namespace
} // namespace dpc
