#include <gtest/gtest.h>

#include <cmath>

#include "util/linalg.hh"
#include "util/rng.hh"

namespace dpc {
namespace {

TEST(MatrixTest, IdentityAndDiagonal)
{
    const auto eye = Matrix::identity(3);
    EXPECT_EQ(eye(0, 0), 1.0);
    EXPECT_EQ(eye(0, 1), 0.0);
    const auto d = Matrix::diagonal({2.0, 3.0});
    EXPECT_EQ(d(0, 0), 2.0);
    EXPECT_EQ(d(1, 1), 3.0);
    EXPECT_EQ(d(1, 0), 0.0);
}

TEST(MatrixTest, TransposeRoundTrip)
{
    Matrix m(2, 3);
    m(0, 1) = 5.0;
    m(1, 2) = -2.0;
    const auto t = m.transpose();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_EQ(t(1, 0), 5.0);
    EXPECT_EQ(t(2, 1), -2.0);
}

TEST(MatrixTest, MatmulMatchesHandComputation)
{
    Matrix a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 3.0;
    a(1, 1) = 4.0;
    const auto sq = a * a;
    EXPECT_EQ(sq(0, 0), 7.0);
    EXPECT_EQ(sq(0, 1), 10.0);
    EXPECT_EQ(sq(1, 0), 15.0);
    EXPECT_EQ(sq(1, 1), 22.0);
}

TEST(MatrixTest, MatvecMatchesHandComputation)
{
    Matrix a(2, 3);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(0, 2) = 3.0;
    a(1, 0) = -1.0;
    const auto y = a * std::vector<double>{1.0, 1.0, 1.0};
    EXPECT_EQ(y[0], 6.0);
    EXPECT_EQ(y[1], -1.0);
}

TEST(MatrixTest, SumDifferenceScale)
{
    Matrix a(1, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    const auto b = a * 3.0;
    EXPECT_EQ(b(0, 1), 6.0);
    const auto c = b - a;
    EXPECT_EQ(c(0, 0), 2.0);
    const auto d = c + a;
    EXPECT_EQ(d(0, 1), 6.0);
    EXPECT_EQ(d.maxAbs(), 6.0);
}

TEST(LuTest, SolvesRandomSystems)
{
    Rng rng(42);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 1 + rng.index(12);
        Matrix a(n, n);
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c)
                a(r, c) = rng.normal();
        // Diagonal dominance guarantees non-singularity.
        for (std::size_t r = 0; r < n; ++r)
            a(r, r) += static_cast<double>(n) + 1.0;
        std::vector<double> x_true(n);
        for (auto &x : x_true)
            x = rng.normal();
        const auto b = a * x_true;
        const auto x = solveLinear(a, b);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x[i], x_true[i], 1e-9);
    }
}

TEST(LuTest, SolveNeedsPivoting)
{
    // Zero leading pivot forces a row swap.
    Matrix a(2, 2);
    a(0, 0) = 0.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 0.0;
    const auto x = solveLinear(a, {3.0, 4.0});
    EXPECT_NEAR(x[0], 4.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuTest, InverseTimesMatrixIsIdentity)
{
    Rng rng(7);
    Matrix a(5, 5);
    for (std::size_t r = 0; r < 5; ++r)
        for (std::size_t c = 0; c < 5; ++c)
            a(r, c) = rng.normal();
    for (std::size_t r = 0; r < 5; ++r)
        a(r, r) += 10.0;
    const auto inv = inverse(a);
    const auto prod = a * inv;
    for (std::size_t r = 0; r < 5; ++r)
        for (std::size_t c = 0; c < 5; ++c)
            EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-9);
}

TEST(LuTest, SingularMatrixPanics)
{
    Matrix a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 2.0;
    a(1, 1) = 4.0;
    EXPECT_DEATH(LuFactorization f(a), "singular");
}

TEST(DotTest, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
}

} // namespace
} // namespace dpc
