#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "alloc/diba.hh"
#include "alloc/kkt.hh"
#include "fault/recovery.hh"
#include "graph/topologies.hh"
#include "metrics/performance.hh"
#include "tests/alloc/test_problems.hh"
#include "util/stats.hh"

namespace dpc {
namespace {

/**
 * Failure-injection fuzzing: drive DiBA with a random interleaving
 * of operations -- iterations, async gossip ticks, budget changes
 * in both directions, workload swaps and node failures -- and
 * assert the safety invariants after every single operation:
 *
 *  - sum of active estimates == active total power - budget;
 *  - every active estimate strictly negative;
 *  - every active power cap inside its utility box;
 *  - total power at or below the budget except for bounded
 *    transients immediately after a drop that exceeds the shedding
 *    capacity (never observed with these op magnitudes, asserted
 *    strictly here).
 */
class DibaFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DibaFuzz, InvariantsSurviveRandomOperationSequences)
{
    const std::size_t n = 40;
    Rng rng(GetParam());
    Rng topo_rng(GetParam() ^ 0x5a5a);
    auto prob = test::npbProblem(n, 175.0, GetParam());
    DibaAllocator diba(makeChordalRing(n, 12, topo_rng));
    diba.reset(prob);

    const auto &suite = npbHpccBenchmarks();
    double budget = prob.budget;
    std::size_t failures = 0;

    auto checkInvariants = [&](const char *op, int step) {
        double se = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!diba.isActive(i))
                continue;
            se += diba.estimates()[i];
            const auto &u = *diba.utilities()[i];
            // A node pinned at its power floor may transiently
            // hold non-negative "debt" after a budget drop (it
            // cannot shed below p_min); everyone else must hold
            // strictly negative slack.
            if (diba.power()[i] > u.minPower() + 1e-6) {
                ASSERT_LT(diba.estimates()[i], 1e-9)
                    << op << " step " << step << " node " << i;
            }
            ASSERT_GE(diba.power()[i], u.minPower() - 1e-9)
                << op << " step " << step;
            ASSERT_LE(diba.power()[i], u.maxPower() + 1e-9)
                << op << " step " << step;
        }
        ASSERT_NEAR(se, diba.totalPower() - budget, 1e-6 * budget)
            << op << " step " << step;
        ASSERT_LE(diba.totalPower(), budget)
            << op << " step " << step;
    };

    for (int step = 0; step < 400; ++step) {
        const int op = static_cast<int>(rng.uniformInt(0, 9));
        if (op < 4) {
            diba.iterate();
            checkInvariants("iterate", step);
        } else if (op < 7) {
            for (int t = 0; t < 10; ++t)
                diba.gossipTick(rng);
            checkInvariants("gossip", step);
        } else if (op == 7) {
            // Budget wiggle within +-6%, floor-safe.
            const double factor = rng.uniform(0.94, 1.06);
            double next = budget * factor;
            next = std::max(next, prob.minTotalPower() * 1.05);
            budget = next;
            diba.setBudget(budget);
            checkInvariants("setBudget", step);
        } else if (op == 8) {
            const std::size_t i = rng.index(n);
            if (diba.isActive(i)) {
                const auto &b = rng.choice(suite);
                diba.setUtility(i, b.utilityPtr());
                checkInvariants("setUtility", step);
            }
        } else if (failures < 4) {
            std::size_t victim = rng.index(n);
            if (diba.isActive(victim) && diba.numActive() > 8) {
                diba.failNode(victim);
                ++failures;
                checkInvariants("failNode", step);
            }
        }
    }

    // After the chaos, the survivors still optimize: run to rest
    // and compare with their oracle.
    for (int it = 0; it < 4000; ++it)
        diba.iterate();
    AllocationProblem reduced;
    std::vector<double> live;
    for (std::size_t i = 0; i < n; ++i) {
        if (diba.isActive(i)) {
            reduced.utilities.push_back(diba.utilities()[i]);
            live.push_back(diba.power()[i]);
        }
    }
    reduced.budget = budget;
    const auto opt = solveKkt(reduced);
    const double u = totalUtility(reduced.utilities, live);
    EXPECT_GT(u, 0.95 * opt.utility)
        << "seed " << GetParam() << ": " << u << " vs "
        << opt.utility;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DibaFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u,
                                           66u, 77u, 88u));

/**
 * Recovery fuzzing: random churn plans executed with zero
 * omniscient calls -- every failNode/joinNode is a detector
 * verdict inferred from missed pairs, the healer keeps the overlay
 * stitched, and the invariant checker audits every round (it
 * asserts conservation, strict slack and the federation's
 * safe-side budget split internally, so surviving the run IS the
 * assertion).
 */
class RecoveryFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RecoveryFuzz, ChurnPlansSurviveDetectorDrivenRecovery)
{
    const std::size_t n = 64;
    const double horizon = 200.0;
    Rng fuzz_rng(GetParam());
    Rng topo_rng(GetParam() ^ 0xa5a5);
    std::vector<std::pair<std::size_t, std::size_t>> spares;
    DibaAllocator diba(
        makeHealableRing(n, 16, 12, topo_rng, &spares));
    diba.reset(test::npbProblem(n, 175.0, GetParam()));

    const std::size_t crashes = 2 + fuzz_rng.index(5);
    const std::size_t rejoins = fuzz_rng.index(crashes + 1);
    FaultPlan plan = FaultPlan::randomChurn(
        n, crashes, rejoins, horizon, GetParam() * 31 + 7);
    LossyChannel::Config loss;
    loss.drop_rate = 0.05 + 0.1 * fuzz_rng.uniform(0.0, 1.0);
    loss.delay_rate = 0.05;
    loss.max_lag = 2;
    plan.loss(loss);
    plan.seed(GetParam() * 131 + 5);

    RecoverySession::Config cfg;
    cfg.detector.node_suspect_after = 8;
    cfg.detector.edge_suspect_after = 20;
    cfg.spare_edges = spares;
    RecoverySession session(diba, plan, cfg);
    while (session.now() < horizon + 150.0)
        session.stepRound();

    // Audited every round, budget never exceeded.
    EXPECT_EQ(session.checker().roundsChecked(),
              session.report().rounds);
    EXPECT_LT(diba.totalPower(), diba.budget());
    // Every never-revived crash was detected in-protocol.
    std::set<std::size_t> gone;
    for (const auto &ev : plan.events())
        if (ev.kind == FaultKind::NodeCrash)
            gone.insert(ev.node);
    for (const auto &ev : plan.events())
        if (ev.kind == FaultKind::NodeRejoin)
            gone.erase(ev.node);
    for (std::size_t v : gone)
        EXPECT_FALSE(diba.isActive(v))
            << "seed " << GetParam() << " node " << v;
    EXPECT_GE(session.report().nodes_failed, gone.size());
    // The believed overlay ends connected among the survivors.
    EXPECT_TRUE(session.components().connected());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFuzz,
                         ::testing::Values(3u, 14u, 159u, 2653u,
                                           58979u, 323846u));

} // namespace
} // namespace dpc
