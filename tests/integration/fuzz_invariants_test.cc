#include <gtest/gtest.h>

#include <cmath>

#include "alloc/diba.hh"
#include "alloc/kkt.hh"
#include "graph/topologies.hh"
#include "metrics/performance.hh"
#include "tests/alloc/test_problems.hh"
#include "util/stats.hh"

namespace dpc {
namespace {

/**
 * Failure-injection fuzzing: drive DiBA with a random interleaving
 * of operations -- iterations, async gossip ticks, budget changes
 * in both directions, workload swaps and node failures -- and
 * assert the safety invariants after every single operation:
 *
 *  - sum of active estimates == active total power - budget;
 *  - every active estimate strictly negative;
 *  - every active power cap inside its utility box;
 *  - total power at or below the budget except for bounded
 *    transients immediately after a drop that exceeds the shedding
 *    capacity (never observed with these op magnitudes, asserted
 *    strictly here).
 */
class DibaFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DibaFuzz, InvariantsSurviveRandomOperationSequences)
{
    const std::size_t n = 40;
    Rng rng(GetParam());
    Rng topo_rng(GetParam() ^ 0x5a5a);
    auto prob = test::npbProblem(n, 175.0, GetParam());
    DibaAllocator diba(makeChordalRing(n, 12, topo_rng));
    diba.reset(prob);

    const auto &suite = npbHpccBenchmarks();
    double budget = prob.budget;
    std::size_t failures = 0;

    auto checkInvariants = [&](const char *op, int step) {
        double se = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!diba.isActive(i))
                continue;
            se += diba.estimates()[i];
            const auto &u = *diba.utilities()[i];
            // A node pinned at its power floor may transiently
            // hold non-negative "debt" after a budget drop (it
            // cannot shed below p_min); everyone else must hold
            // strictly negative slack.
            if (diba.power()[i] > u.minPower() + 1e-6) {
                ASSERT_LT(diba.estimates()[i], 1e-9)
                    << op << " step " << step << " node " << i;
            }
            ASSERT_GE(diba.power()[i], u.minPower() - 1e-9)
                << op << " step " << step;
            ASSERT_LE(diba.power()[i], u.maxPower() + 1e-9)
                << op << " step " << step;
        }
        ASSERT_NEAR(se, diba.totalPower() - budget, 1e-6 * budget)
            << op << " step " << step;
        ASSERT_LE(diba.totalPower(), budget)
            << op << " step " << step;
    };

    for (int step = 0; step < 400; ++step) {
        const int op = static_cast<int>(rng.uniformInt(0, 9));
        if (op < 4) {
            diba.iterate();
            checkInvariants("iterate", step);
        } else if (op < 7) {
            for (int t = 0; t < 10; ++t)
                diba.gossipTick(rng);
            checkInvariants("gossip", step);
        } else if (op == 7) {
            // Budget wiggle within +-6%, floor-safe.
            const double factor = rng.uniform(0.94, 1.06);
            double next = budget * factor;
            next = std::max(next, prob.minTotalPower() * 1.05);
            budget = next;
            diba.setBudget(budget);
            checkInvariants("setBudget", step);
        } else if (op == 8) {
            const std::size_t i = rng.index(n);
            if (diba.isActive(i)) {
                const auto &b = rng.choice(suite);
                diba.setUtility(i, b.utilityPtr());
                checkInvariants("setUtility", step);
            }
        } else if (failures < 4) {
            std::size_t victim = rng.index(n);
            if (diba.isActive(victim) && diba.numActive() > 8) {
                diba.failNode(victim);
                ++failures;
                checkInvariants("failNode", step);
            }
        }
    }

    // After the chaos, the survivors still optimize: run to rest
    // and compare with their oracle.
    for (int it = 0; it < 4000; ++it)
        diba.iterate();
    AllocationProblem reduced;
    std::vector<double> live;
    for (std::size_t i = 0; i < n; ++i) {
        if (diba.isActive(i)) {
            reduced.utilities.push_back(diba.utilities()[i]);
            live.push_back(diba.power()[i]);
        }
    }
    reduced.budget = budget;
    const auto opt = solveKkt(reduced);
    const double u = totalUtility(reduced.utilities, live);
    EXPECT_GT(u, 0.95 * opt.utility)
        << "seed " << GetParam() << ": " << u << " vs "
        << opt.utility;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DibaFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u,
                                           66u, 77u, 88u));

} // namespace
} // namespace dpc
