#include <gtest/gtest.h>

#include "alloc/diba.hh"
#include "alloc/greedy.hh"
#include "alloc/kkt.hh"
#include "alloc/primal_dual.hh"
#include "alloc/uniform.hh"
#include "graph/topologies.hh"
#include "metrics/performance.hh"
#include "tests/alloc/test_problems.hh"

namespace dpc {
namespace {

/**
 * Cross-algorithm invariants over random problem instances: every
 * scheme stays feasible, nobody beats the KKT oracle, and the
 * paper's ordering (optimal ~ PD ~ DiBA > greedy/uniform) holds.
 */
class AllocatorProperties
    : public ::testing::TestWithParam<std::tuple<std::size_t,
                                                 double, int>>
{
};

TEST_P(AllocatorProperties, OrderingAndFeasibility)
{
    const auto [n, wpn, seed] = GetParam();
    const auto prob =
        test::npbProblem(n, wpn, static_cast<std::uint64_t>(seed));
    const auto oracle = solveKkt(prob);

    UniformAllocator uniform;
    GreedyTpwAllocator greedy;
    PrimalDualAllocator pd;
    DibaAllocator diba(makeRing(n));

    const auto r_uniform = uniform.allocate(prob);
    const auto r_greedy = greedy.allocate(prob);
    const auto r_pd = pd.allocate(prob);
    const auto r_diba = diba.allocate(prob);

    for (const auto *r : {&r_uniform, &r_greedy, &r_pd, &r_diba}) {
        EXPECT_LE(r->totalPower(), prob.budget + 1e-6);
        EXPECT_LE(r->utility, oracle.utility + 1e-6);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_GE(r->power[i],
                      prob.utilities[i]->minPower() - 1e-9);
            EXPECT_LE(r->power[i],
                      prob.utilities[i]->maxPower() + 1e-9);
        }
    }

    // The decentralized schemes track the oracle closely...
    EXPECT_TRUE(withinFractionOfOptimal(r_pd.utility,
                                        oracle.utility, 0.995));
    EXPECT_TRUE(withinFractionOfOptimal(r_diba.utility,
                                        oracle.utility, 0.97));
    // ...and beat the uniform baseline.
    EXPECT_GE(r_pd.utility, r_uniform.utility - 1e-9);
    EXPECT_GE(r_diba.utility, r_uniform.utility - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, AllocatorProperties,
    ::testing::Combine(::testing::Values<std::size_t>(24, 60),
                       ::testing::Values(163.0, 171.0, 181.0),
                       ::testing::Values(1, 2)));

/**
 * SNP-level comparison mirroring Fig. 4.3: the optimizing schemes
 * dominate uniform, with the gap shrinking as budgets loosen.
 */
TEST(SnpOrderingTest, GapShrinksWithBudget)
{
    const std::size_t n = 120;
    auto snp_gap = [&](double wpn) {
        const auto prob = test::npbProblem(n, wpn, 5);
        UniformAllocator uniform;
        const auto u = uniform.allocate(prob);
        const auto o = solveKkt(prob);
        const auto anp_u = anpVector(prob.utilities, u.power);
        const auto anp_o = anpVector(prob.utilities, o.power);
        return snpArithmetic(anp_o) / snpArithmetic(anp_u) - 1.0;
    };
    const double tight = snp_gap(166.0);
    const double loose = snp_gap(186.0);
    EXPECT_GT(tight, loose);
    EXPECT_GT(tight, 0.05);  // noticeable win at tight budgets
    EXPECT_GT(loose, 0.005); // still a win when loose
}

/** AM-GM sanity across every allocator output. */
TEST(SnpOrderingTest, GeometricNeverExceedsArithmetic)
{
    const auto prob = test::npbProblem(80, 170.0, 9);
    DibaAllocator diba(makeRing(80));
    const auto res = diba.allocate(prob);
    const auto anps = anpVector(prob.utilities, res.power);
    EXPECT_LE(snpGeometric(anps), snpArithmetic(anps) + 1e-12);
}

} // namespace
} // namespace dpc
