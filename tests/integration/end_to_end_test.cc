#include <gtest/gtest.h>

#include "alloc/knapsack.hh"
#include "alloc/uniform.hh"
#include "metrics/performance.hh"
#include "model/predictors.hh"
#include "thermal/total_budgeter.hh"
#include "workload/generator.hh"

namespace dpc {
namespace {

/**
 * The full Chapter-3 pipeline at reduced scale: characterize ->
 * train predictor -> predict per-cap values -> knapsack budget ->
 * compare against uniform and the oracle knapsack.
 */
TEST(EndToEndTest, PredictorKnapsackBeatsUniform)
{
    Rng rng(31);
    const std::size_t n = 120;
    const auto cluster =
        drawSpecMixAssignment(n, MixKind::HomogeneousWithinServer,
                              rng);
    CapGrid grid;
    KnapsackBudgeter budgeter(grid);

    // Train the proposed predictor on a disjoint characterization
    // database.
    auto predictor = makeQuadraticLlcTpPredictor();
    Rng train_rng(32);
    predictor->train(makeCharacterizationSet(200, train_rng));

    // Runtime observations at a mid cap; predicted values per cap.
    std::vector<std::vector<double>> predicted(n);
    std::vector<std::vector<double>> oracle(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &u = *cluster[i].utility;
        ServerObservation obs{145.0, u.value(145.0),
                              cluster[i].llc};
        const auto curve = predictor->predict(obs);
        for (std::size_t j = 0; j < grid.levels; ++j) {
            const double cap = grid.capAt(j);
            predicted[i].push_back(std::max(curve(cap), 1e-6));
            oracle[i].push_back(u.value(cap));
        }
    }

    const double budget = 147.0 * static_cast<double>(n);
    const auto knap_pred = budgeter.allocate(predicted, budget);
    const auto knap_oracle = budgeter.allocate(oracle, budget);

    // Uniform at the same budget: everyone gets the same cap.
    const double share = budget / static_cast<double>(n);
    std::vector<double> uniform_caps(n, grid.capAt(0));
    for (std::size_t j = 0; j < grid.levels; ++j)
        if (grid.capAt(j) <= share)
            uniform_caps.assign(n, grid.capAt(j));

    const auto us = utilitiesOf(cluster);
    const double snp_pred = snpGeometric(
        anpVector(us, knap_pred.power));
    const double snp_oracle = snpGeometric(
        anpVector(us, knap_oracle.power));
    const double snp_uniform =
        snpGeometric(anpVector(us, uniform_caps));

    EXPECT_GT(snp_pred, snp_uniform);
    EXPECT_GE(snp_oracle, snp_pred - 1e-9);
    // Predictor-driven budgeting lands close to the oracle
    // (Fig. 3.12's "close to the results from the oracle case").
    EXPECT_GT(snp_pred, 0.97 * snp_oracle);
}

/**
 * Algorithm 1 with the knapsack budgeter in the loop (Exp. 1 of
 * Ch. 3) at reduced scale: 400 servers in 20 racks.
 */
TEST(EndToEndTest, SelfConsistentSplitWithKnapsackAllocator)
{
    Rng rng(41);
    const std::size_t n = 400;
    const std::size_t racks = 20;
    const auto cluster = drawSpecMixAssignment(
        n, MixKind::HomogeneousWithinServer, rng);
    const auto us = utilitiesOf(cluster);

    CapGrid grid;
    KnapsackBudgeter budgeter(grid);
    std::vector<std::vector<double>> values(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < grid.levels; ++j)
            values[i].push_back(us[i]->value(grid.capAt(j)));

    const auto d = makeSyntheticRecirculation(4, 5, 0.25, rng);
    HeatModel heat(d, std::vector<double>(racks, 500.0), 24.0);
    CoolingModel::Config ccfg;
    ccfg.rated_power_w = 165.0 * static_cast<double>(n);
    CoolingModel cooling(heat, CopModel(), ccfg);
    TotalPowerBudgeter total(cooling);

    auto allocate = [&](double b_s) {
        const auto res = budgeter.allocate(values, b_s);
        std::vector<double> rack_power(racks, 0.0);
        for (std::size_t i = 0; i < n; ++i)
            rack_power[i % racks] += res.power[i];
        return rack_power;
    };

    const double budget = 80000.0; // ~200 W/server total envelope
    const auto res = total.partition(budget, allocate);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.b_s + res.b_crac, budget, 11.0);
    // The computing split is actually allocatable by the knapsack.
    EXPECT_GE(res.b_s, 130.0 * static_cast<double>(n));
}

/**
 * Knapsack budgeting beats uniform on all three Ch.3 metrics at a
 * tight budget (the Fig. 3.12 shape).
 */
TEST(EndToEndTest, KnapsackImprovesAllThreeMetrics)
{
    Rng rng(51);
    const std::size_t n = 200;
    const auto cluster = drawSpecMixAssignment(
        n, MixKind::HomogeneousWithinServer, rng);
    const auto us = utilitiesOf(cluster);

    CapGrid grid;
    KnapsackBudgeter budgeter(grid);
    std::vector<std::vector<double>> values(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < grid.levels; ++j)
            values[i].push_back(
                us[i]->value(grid.capAt(j)) /
                us[i]->peakValue());

    const double budget = 140.0 * static_cast<double>(n);
    const auto knap = budgeter.allocate(values, budget);
    const std::vector<double> uniform_caps(n, 140.0);

    const auto rep_k = evaluateAllocation(us, knap.power);
    const auto rep_u = evaluateAllocation(us, uniform_caps);

    EXPECT_GT(rep_k.snp_geo, rep_u.snp_geo);
    EXPECT_LT(rep_k.slowdown, rep_u.slowdown);
    EXPECT_LT(rep_k.unfair, rep_u.unfair);
}

} // namespace
} // namespace dpc
