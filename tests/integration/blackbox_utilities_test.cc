#include <gtest/gtest.h>

#include "alloc/diba.hh"
#include "alloc/kkt.hh"
#include "alloc/primal_dual.hh"
#include "graph/topologies.hh"
#include "metrics/performance.hh"
#include "util/stats.hh"
#include "workload/benchmarks.hh"

namespace dpc {
namespace {

/**
 * Every allocator treats utilities as black boxes (value /
 * derivative / bestResponse only).  These tests drive the whole
 * stack through PiecewiseLinearUtility -- raw measured samples
 * with kinks, no analytic quadratic structure -- exercising the
 * generic bisection best response and the finite-difference
 * curvature path in DiBA.
 */
AllocationProblem
pwlProblem(std::size_t n, double wpn, std::uint64_t seed)
{
    Rng rng(seed);
    AllocationProblem prob;
    prob.utilities.reserve(n);
    const auto &suite = npbHpccBenchmarks();
    for (std::size_t i = 0; i < n; ++i) {
        const auto &b = rng.choice(suite);
        std::vector<double> ps, ts;
        // Noiseless samples keep the interpolant concave.
        b.sampleCurve(9, rng, 0.0, ps, ts);
        prob.utilities.push_back(
            std::make_shared<PiecewiseLinearUtility>(
                std::move(ps), std::move(ts)));
    }
    prob.budget = wpn * static_cast<double>(n);
    return prob;
}

TEST(BlackboxUtilitiesTest, KktHandlesPiecewiseLinear)
{
    const auto prob = pwlProblem(40, 170.0, 1);
    const auto res = solveKkt(prob);
    EXPECT_LE(res.totalPower(), prob.budget + 1e-6);
    // Spot-check optimality against perturbed allocations: moving
    // power between any pair cannot improve the utility.
    for (std::size_t i = 0; i < 6; ++i) {
        for (std::size_t j = 6; j < 12; ++j) {
            auto p = res.power;
            const double d = 2.0;
            p[i] = prob.utilities[i]->clampPower(p[i] + d);
            p[j] = prob.utilities[j]->clampPower(p[j] - d);
            if (sum(p) > prob.budget)
                continue;
            // Piecewise-linear utilities are not strictly
            // concave: on flat-slope segments the water-filling
            // price leaves a bounded indifference gap (one
            // segment's worth), so allow a 0.2% slack.
            EXPECT_LE(totalUtility(prob.utilities, p),
                      res.utility * 1.002);
        }
    }
}

TEST(BlackboxUtilitiesTest, PrimalDualHandlesPiecewiseLinear)
{
    const auto prob = pwlProblem(60, 168.0, 2);
    const auto opt = solveKkt(prob);
    PrimalDualAllocator pd;
    const auto res = pd.allocate(prob);
    EXPECT_LE(res.totalPower(), prob.budget + 1e-6);
    EXPECT_TRUE(
        withinFractionOfOptimal(res.utility, opt.utility, 0.99));
}

TEST(BlackboxUtilitiesTest, DibaHandlesPiecewiseLinear)
{
    const auto prob = pwlProblem(48, 170.0, 3);
    const auto opt = solveKkt(prob);
    Rng topo_rng(4);
    DibaAllocator diba(makeChordalRing(48, 12, topo_rng));
    diba.reset(prob);
    for (int it = 0; it < 4000; ++it) {
        diba.iterate();
        ASSERT_LT(diba.totalPower(), prob.budget);
    }
    const double u = totalUtility(prob.utilities, diba.power());
    EXPECT_TRUE(withinFractionOfOptimal(u, opt.utility, 0.97))
        << u << " vs " << opt.utility;
}

} // namespace
} // namespace dpc
