#include <gtest/gtest.h>

#include "alloc/diba.hh"
#include "alloc/kkt.hh"
#include "cluster/sim.hh"
#include "graph/topologies.hh"
#include "metrics/performance.hh"
#include "tests/alloc/test_problems.hh"
#include "util/stats.hh"

namespace dpc {
namespace {

/**
 * Fig. 4.4 shape: a budget staircase tracked closely from above,
 * never violated from below.
 */
TEST(DynamicScenariosTest, BudgetStaircaseTracked)
{
    const std::size_t n = 64;
    Rng rng(61);
    auto assignment = drawNpbAssignment(n, rng);
    const std::vector<double> levels{180.0, 170.0, 185.0, 165.0};
    ClusterSim sim(
        std::move(assignment), makeRing(n),
        static_cast<double>(n) * 180.0, DibaAllocator::Config(),
        ClusterSim::Options{
            .budget_schedule =
                [&](double t) {
                    const auto k = std::min<std::size_t>(
                        static_cast<std::size_t>(t / 20.0),
                        levels.size() - 1);
                    return static_cast<double>(n) * levels[k];
                },
        });
    const auto samples = sim.run(80.0);
    for (const auto &s : samples) {
        EXPECT_LT(s.allocated_power, s.budget);
    }
    // In the steady part of each plateau, allocation tracks within
    // a few percent of the budget (near-optimal usage).
    for (std::size_t plateau = 0; plateau < 4; ++plateau) {
        const std::size_t idx = plateau * 20 + 15;
        EXPECT_GT(samples[idx].allocated_power,
                  0.93 * samples[idx].budget)
            << "plateau " << plateau;
    }
}

/**
 * Figs. 4.5/4.6 shape: on a drop the power is shed within one
 * control step; on a jump the power climbs over a few steps.
 */
TEST(DynamicScenariosTest, DropIsImmediateJumpIsGradual)
{
    const std::size_t n = 100;
    const auto prob = test::npbProblem(n, 190.0, 62);
    DibaAllocator diba(makeRing(n));
    diba.reset(prob);
    for (int it = 0; it < 2000; ++it)
        diba.iterate();

    // Drop 190 -> 170 W/node.
    const double lo = static_cast<double>(n) * 170.0;
    diba.setBudget(lo);
    EXPECT_LE(diba.totalPower(), lo); // same control step

    // Jump back 170 -> 190.
    for (int it = 0; it < 2000; ++it)
        diba.iterate();
    const double hi = static_cast<double>(n) * 190.0;
    const double before = diba.totalPower();
    diba.setBudget(hi);
    // No instantaneous jump...
    EXPECT_NEAR(diba.totalPower(), before, 1e-9);
    // ...but the headroom is consumed over subsequent rounds.
    for (int it = 0; it < 2000; ++it)
        diba.iterate();
    EXPECT_GT(diba.totalPower(), before + 0.05 * (hi - before));
    EXPECT_LT(diba.totalPower(), hi);
}

/**
 * Fig. 4.7 shape: under continuous churn the SNP stays near the
 * moving optimum and the budget is never violated.
 */
TEST(DynamicScenariosTest, ChurnTracksMovingOptimum)
{
    const std::size_t n = 64;
    Rng rng(63);
    auto assignment = drawNpbAssignment(n, rng);
    ClusterSimConfig cfg;
    cfg.mean_job_s = 8.0;
    cfg.diba_rounds_per_step = 120;
    ClusterSim sim(std::move(assignment), makeRing(n),
                   static_cast<double>(n) * 175.0,
                   DibaAllocator::Config(), cfg);
    const auto samples = sim.run(90.0);

    // Budget guarantee throughout the churn.
    for (const auto &s : samples)
        EXPECT_LT(s.allocated_power, s.budget);

    // Compare the achieved caps against the oracle for the final
    // workload mix.
    AllocationProblem prob{utilitiesOf({}), 0.0};
    prob.utilities = sim.diba().utilities();
    prob.budget = static_cast<double>(n) * 175.0;
    const auto opt = solveKkt(prob);
    const double u_diba =
        totalUtility(prob.utilities, sim.diba().power());
    EXPECT_TRUE(
        withinFractionOfOptimal(u_diba, opt.utility, 0.95));
}

/**
 * Fig. 4.8 shape: the estimation disturbance from a single node's
 * utility change spreads outward along the ring over iterations.
 */
TEST(DynamicScenariosTest, EstimateDisturbancePropagatesLocally)
{
    const std::size_t n = 100;
    const auto prob = test::npbProblem(n, 172.0, 64);
    DibaAllocator diba(makeRing(n));
    diba.reset(prob);
    for (int it = 0; it < 4000; ++it)
        diba.iterate();
    const auto e_before = diba.estimates();

    // Perturb to the opposite workload class so the change really
    // shifts node 50's demand.
    const auto &u50 = *prob.utilities[50];
    const bool saturating =
        u50.value(u50.minPower()) / u50.peakValue() > 0.55;
    diba.setUtility(
        50, std::make_shared<QuadraticUtility>(
                saturating ? QuadraticUtility::fromShape(
                                 0.18, 0.03, 120.0, 220.0)
                           : QuadraticUtility::fromShape(
                                 0.88, 1.0, 120.0, 220.0)));
    // After a few rounds the disturbance is concentrated near node
    // 50.
    for (int it = 0; it < 10; ++it)
        diba.iterate();
    const auto e_mid = diba.estimates();
    double near = 0.0, far = 0.0;
    for (std::size_t i = 45; i <= 55; ++i)
        near += std::fabs(e_mid[i] - e_before[i]);
    for (std::size_t i = 0; i <= 10; ++i)
        far += std::fabs(e_mid[i] - e_before[i]);
    EXPECT_GT(near, 2.0 * far);
}

} // namespace
} // namespace dpc
