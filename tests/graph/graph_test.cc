#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/graph.hh"

namespace dpc {
namespace {

TEST(GraphTest, EmptyGraphBasics)
{
    Graph g(5);
    EXPECT_EQ(g.numVertices(), 5u);
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_EQ(g.averageDegree(), 0.0);
    EXPECT_FALSE(g.isConnected());
}

TEST(GraphTest, AddEdgeRejectsSelfLoopsAndDuplicates)
{
    Graph g(3);
    EXPECT_TRUE(g.addEdge(0, 1));
    EXPECT_FALSE(g.addEdge(0, 0));
    EXPECT_FALSE(g.addEdge(1, 0));
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(GraphTest, HasEdgeSymmetric)
{
    Graph g(4);
    g.addEdge(1, 3);
    EXPECT_TRUE(g.hasEdge(1, 3));
    EXPECT_TRUE(g.hasEdge(3, 1));
    EXPECT_FALSE(g.hasEdge(0, 1));
}

TEST(GraphTest, DegreesAndAverage)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(0, 3);
    EXPECT_EQ(g.degree(0), 3u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.maxDegree(), 3u);
    EXPECT_DOUBLE_EQ(g.averageDegree(), 1.5);
}

TEST(GraphTest, BfsDistancesOnPath)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    const auto d = g.bfsDistances(0);
    EXPECT_EQ(d[0], 0u);
    EXPECT_EQ(d[3], 3u);
}

TEST(GraphTest, BfsUnreachableSentinel)
{
    Graph g(3);
    g.addEdge(0, 1);
    const auto d = g.bfsDistances(0);
    EXPECT_EQ(d[2], g.numVertices());
}

TEST(GraphTest, ConnectivityDetection)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    EXPECT_FALSE(g.isConnected());
    g.addEdge(1, 2);
    EXPECT_TRUE(g.isConnected());
}

TEST(GraphTest, DiameterOfPathGraph)
{
    Graph g(5);
    for (std::size_t v = 0; v + 1 < 5; ++v)
        g.addEdge(v, v + 1);
    EXPECT_EQ(g.diameter(), 4u);
}

TEST(GraphTest, OutOfRangePanics)
{
    Graph g(2);
    EXPECT_DEATH(g.addEdge(0, 2), "out of range");
    EXPECT_DEATH(g.neighbors(5), "out of range");
}

TEST(GraphTest, CsrMirrorsAdjacencyLists)
{
    Graph g(5);
    g.addEdge(0, 1);
    g.addEdge(0, 3);
    g.addEdge(1, 2);
    g.addEdge(3, 4);
    const GraphCsr &csr = g.csr();
    ASSERT_EQ(csr.offsets.size(), g.numVertices() + 1);
    EXPECT_EQ(csr.offsets.front(), 0u);
    EXPECT_EQ(csr.offsets.back(), 2 * g.numEdges());
    for (std::size_t v = 0; v < g.numVertices(); ++v) {
        const auto &adj = g.neighbors(v);
        ASSERT_EQ(csr.degree(v), adj.size());
        EXPECT_EQ(csr.degree(v), g.degree(v));
        for (std::size_t k = 0; k < adj.size(); ++k)
            EXPECT_EQ(csr.neighbors[csr.offsets[v] + k], adj[k])
                << "vertex " << v << " slot " << k;
    }
}

TEST(GraphTest, CsrRebuildsAfterAddEdge)
{
    Graph g(4);
    g.addEdge(0, 1);
    EXPECT_EQ(g.csr().neighbors.size(), 2u);
    g.addEdge(2, 3);
    g.addEdge(1, 2);
    const GraphCsr &csr = g.csr();
    EXPECT_EQ(csr.neighbors.size(), 6u);
    EXPECT_EQ(csr.degree(1), 2u);
    EXPECT_EQ(csr.degree(3), 1u);
}

TEST(GraphTest, CsrOfEdgelessGraph)
{
    Graph g(3);
    const GraphCsr &csr = g.csr();
    EXPECT_TRUE(csr.neighbors.empty());
    for (std::size_t v = 0; v < 3; ++v)
        EXPECT_EQ(csr.degree(v), 0u);
}

TEST(GraphTest, DiameterOfRing)
{
    Graph ring(8);
    for (std::size_t v = 0; v < 8; ++v)
        ring.addEdge(v, (v + 1) % 8);
    EXPECT_EQ(ring.diameter(), 4u);
}

TEST(GraphTest, CsrChunkLocality)
{
    // A contiguous-id ring keeps every neighbour reference inside
    // its chunk except the two directed references crossing each
    // of the `chunks` cut points.
    Graph ring(64);
    for (std::size_t v = 0; v < 64; ++v)
        ring.addEdge(v, (v + 1) % 64);
    const GraphCsr &csr = ring.csr();
    EXPECT_DOUBLE_EQ(csrChunkLocality(csr, 1), 1.0);
    const double expected = 1.0 - (4.0 * 2.0) / 128.0;
    EXPECT_DOUBLE_EQ(csrChunkLocality(csr, 4), expected);

    // A star from vertex 0 is maximally non-local: only the
    // references inside chunk 0 stay local.
    Graph star(64);
    for (std::size_t v = 1; v < 64; ++v)
        star.addEdge(0, v);
    EXPECT_LT(csrChunkLocality(star.csr(), 4), 0.3);

    Graph empty(5);
    EXPECT_DOUBLE_EQ(csrChunkLocality(empty.csr(), 4), 1.0);
}

TEST(GraphTest, CsrChunkLocalityMasked)
{
    // Ring plus one long chord: in the unmasked metric the chord
    // contributes two non-local directed slots; masking exactly
    // those slots must restore the pure-ring score, and masking
    // everything scores 1.0 (no live traffic).
    Graph g(64);
    for (std::size_t v = 0; v < 64; ++v)
        g.addEdge(v, (v + 1) % 64);
    g.addEdge(3, 40);
    const GraphCsr &csr = g.csr();

    std::vector<std::uint8_t> live(csr.neighbors.size(), 1);
    const double all_live = csrChunkLocality(csr, 4, live.data());
    EXPECT_DOUBLE_EQ(all_live, csrChunkLocality(csr, 4));

    // Both directions of the chord are distinct directed slots;
    // kill both, plus nothing else.
    std::size_t masked = 0;
    for (std::size_t v : {std::size_t{3}, std::size_t{40}})
        for (std::uint32_t k = csr.offsets[v];
             k < csr.offsets[v + 1]; ++k)
            if (csr.neighbors[k] == (v == 3 ? 40u : 3u)) {
                live[k] = 0;
                ++masked;
            }
    ASSERT_EQ(masked, 2u);
    const double ring_expected = 1.0 - (4.0 * 2.0) / 128.0;
    EXPECT_DOUBLE_EQ(csrChunkLocality(csr, 4, live.data()),
                     ring_expected);
    // The chord really did depress the unmasked score.
    EXPECT_LT(all_live, ring_expected);
    // Fully masked graph: defined as perfectly local.
    std::fill(live.begin(), live.end(), 0);
    EXPECT_DOUBLE_EQ(csrChunkLocality(csr, 4, live.data()), 1.0);
}

} // namespace
} // namespace dpc
