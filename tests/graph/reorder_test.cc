/**
 * @file
 * Layout subsystem (graph/reorder.hh): permutation validity,
 * determinism, the locality closed loop, and the documented
 * guarantees of each ordering (RCM bandwidth behaviour, bisection
 * contiguity, automatic never losing to identity).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "graph/graph.hh"
#include "graph/reorder.hh"
#include "graph/topologies.hh"
#include "util/rng.hh"

using namespace dpc;

namespace {

bool
isPermutation(const std::vector<std::uint32_t> &perm)
{
    std::vector<std::uint8_t> seen(perm.size(), 0);
    for (const std::uint32_t p : perm) {
        if (p >= perm.size() || seen[p])
            return false;
        seen[p] = 1;
    }
    return true;
}

/** Graph isomorphic to g with ids scrambled by `rng` -- the
 * adversarial input a locality layout must undo. */
Graph
scrambled(const Graph &g, Rng &rng)
{
    std::vector<std::uint32_t> shuf(g.numVertices());
    std::iota(shuf.begin(), shuf.end(), 0u);
    rng.shuffle(shuf);
    return g.relabeled(shuf);
}

std::size_t
bandwidth(const Graph &g, const std::vector<std::uint32_t> &perm)
{
    std::size_t bw = 0;
    for (std::size_t v = 0; v < g.numVertices(); ++v)
        for (const std::size_t w : g.neighbors(v)) {
            const std::size_t a = perm[v], b = perm[w];
            bw = std::max(bw, a > b ? a - b : b - a);
        }
    return bw;
}

} // namespace

TEST(ReorderTest, EveryLayoutYieldsAValidPermutation)
{
    Rng rng(7);
    const Graph g = makeChordalRing(257, 40, rng);
    for (const Layout l : {Layout::identity, Layout::rcm,
                           Layout::bisection, Layout::hilbert,
                           Layout::automatic}) {
        const auto perm = computeLayout(g, l, 4);
        ASSERT_EQ(perm.size(), g.numVertices()) << layoutName(l);
        EXPECT_TRUE(isPermutation(perm)) << layoutName(l);
    }
}

TEST(ReorderTest, LayoutsAreDeterministic)
{
    Rng rng(11);
    const Graph g = makeConnectedErdosRenyi(180, 700, rng);
    for (const Layout l :
         {Layout::rcm, Layout::bisection, Layout::hilbert,
          Layout::automatic}) {
        EXPECT_EQ(computeLayout(g, l, 8), computeLayout(g, l, 8))
            << layoutName(l);
    }
}

TEST(ReorderTest, InverseRoundTrips)
{
    Rng rng(3);
    const Graph g = makeChordalRing(100, 15, rng);
    const auto perm = reverseCuthillMcKee(g);
    const auto inv = inversePermutation(perm);
    for (std::size_t i = 0; i < perm.size(); ++i)
        EXPECT_EQ(inv[perm[i]], i);
    EXPECT_TRUE(isIdentityPermutation(identityOrder(64)));
    EXPECT_FALSE(isIdentityPermutation(perm) &&
                 bandwidth(g, perm) != bandwidth(g, identityOrder(
                                           g.numVertices())));
}

TEST(ReorderTest, RcmRecoversRingBandwidthFromAScramble)
{
    // A ring in natural order has bandwidth n-1 (the wrap edge);
    // scrambled it is near n.  RCM must bring it back to O(1).
    const Graph ring = makeRing(512);
    Rng rng(99);
    const Graph bad = scrambled(ring, rng);
    const std::size_t bw_scrambled =
        bandwidth(bad, identityOrder(bad.numVertices()));
    const std::size_t bw_rcm =
        bandwidth(bad, reverseCuthillMcKee(bad));
    EXPECT_GT(bw_scrambled, 100u);
    EXPECT_LE(bw_rcm, 4u);
}

TEST(ReorderTest, LayoutLocalityMatchesRelabeledMeasurement)
{
    Rng rng(21);
    const Graph g = scrambled(makeChordalRing(300, 30, rng), rng);
    const auto perm = reverseCuthillMcKee(g);
    const double reported = layoutLocality(g, perm, 4);
    const Graph relabeled = g.relabeled(perm);
    EXPECT_EQ(reported, csrChunkLocality(relabeled.csr(), 4));
    // And the layout must actually help on a scrambled ring.
    EXPECT_GT(reported,
              layoutLocality(g, identityOrder(g.numVertices()), 4));
}

TEST(ReorderTest, AutomaticNeverLosesToIdentity)
{
    Rng rng(5);
    const std::vector<Graph> graphs = {
        makeRing(128),
        scrambled(makeRing(128), rng),
        makeChordalRing(200, 25, rng),
        scrambled(makeChordalRing(200, 25, rng), rng),
        makeTwoTierFabric(96, 12),
    };
    for (const Graph &g : graphs) {
        const std::size_t chunks = 4;
        const auto best = computeLayout(g, Layout::automatic, chunks);
        const double loc_auto = layoutLocality(g, best, chunks);
        const double loc_id = layoutLocality(
            g, identityOrder(g.numVertices()), chunks);
        EXPECT_GE(loc_auto, loc_id);
    }
}

TEST(ReorderTest, BisectionKeepsComponentsContiguous)
{
    // Two disjoint cliques wired into one graph via a Graph with
    // two components: each component's new ids must be contiguous.
    Graph g(12);
    for (std::size_t a = 0; a < 6; ++a)
        for (std::size_t b = a + 1; b < 6; ++b)
            g.addEdge(a, b);
    for (std::size_t a = 6; a < 12; ++a)
        for (std::size_t b = a + 1; b < 12; ++b)
            g.addEdge(a, b);
    const auto perm = recursiveBisectionOrder(g);
    ASSERT_TRUE(isPermutation(perm));
    std::vector<std::uint32_t> lo(perm.begin(), perm.begin() + 6);
    std::vector<std::uint32_t> hi(perm.begin() + 6, perm.end());
    std::sort(lo.begin(), lo.end());
    std::sort(hi.begin(), hi.end());
    for (std::size_t i = 1; i < lo.size(); ++i)
        EXPECT_EQ(lo[i], lo[i - 1] + 1);
    for (std::size_t i = 1; i < hi.size(); ++i)
        EXPECT_EQ(hi[i], hi[i - 1] + 1);
}

TEST(ReorderTest, HilbertHandlesNonSquareSizes)
{
    for (const std::size_t n : {1u, 2u, 3u, 5u, 16u, 17u, 63u}) {
        Graph g(n);
        for (std::size_t v = 0; v + 1 < n; ++v)
            g.addEdge(v, v + 1);
        const auto perm = hilbertOrder(g);
        ASSERT_EQ(perm.size(), n);
        EXPECT_TRUE(isPermutation(perm)) << "n=" << n;
    }
}

TEST(ReorderTest, RelabeledPreservesStructureAndNeighborOrder)
{
    Rng rng(13);
    const Graph g = makeChordalRing(64, 10, rng);
    std::vector<std::uint32_t> shuf(g.numVertices());
    std::iota(shuf.begin(), shuf.end(), 0u);
    rng.shuffle(shuf);
    const Graph h = g.relabeled(shuf);
    ASSERT_EQ(h.numVertices(), g.numVertices());
    ASSERT_EQ(h.numEdges(), g.numEdges());
    // Load-bearing invariant (FP reduction order, edge-id
    // enumeration): neighbour lists map element for element.
    for (std::size_t v = 0; v < g.numVertices(); ++v) {
        const auto &gv = g.neighbors(v);
        const auto &hv = h.neighbors(shuf[v]);
        ASSERT_EQ(gv.size(), hv.size());
        for (std::size_t k = 0; k < gv.size(); ++k)
            EXPECT_EQ(hv[k], shuf[gv[k]]);
    }
}
