#include <gtest/gtest.h>

#include "graph/topologies.hh"

namespace dpc {
namespace {

TEST(TopologiesTest, RingStructure)
{
    const auto g = makeRing(6);
    EXPECT_EQ(g.numEdges(), 6u);
    for (std::size_t v = 0; v < 6; ++v)
        EXPECT_EQ(g.degree(v), 2u);
    EXPECT_TRUE(g.isConnected());
    EXPECT_EQ(g.diameter(), 3u);
}

TEST(TopologiesTest, ChordalRingAddsExactChords)
{
    Rng rng(1);
    const auto g = makeChordalRing(20, 5, rng);
    EXPECT_EQ(g.numEdges(), 25u);
    EXPECT_TRUE(g.isConnected());
}

TEST(TopologiesTest, StarStructure)
{
    const auto g = makeStar(8);
    EXPECT_EQ(g.numEdges(), 7u);
    EXPECT_EQ(g.degree(0), 7u);
    for (std::size_t v = 1; v < 8; ++v)
        EXPECT_EQ(g.degree(v), 1u);
    EXPECT_TRUE(g.isConnected());
}

TEST(TopologiesTest, CompleteGraph)
{
    const auto g = makeComplete(5);
    EXPECT_EQ(g.numEdges(), 10u);
    EXPECT_EQ(g.diameter(), 1u);
}

class ErdosRenyiTest
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ErdosRenyiTest, ConnectedWithExactEdgeCount)
{
    const std::size_t m = GetParam();
    Rng rng(m);
    const auto g = makeConnectedErdosRenyi(30, m, rng);
    EXPECT_EQ(g.numVertices(), 30u);
    EXPECT_EQ(g.numEdges(), m);
    EXPECT_TRUE(g.isConnected());
}

INSTANTIATE_TEST_SUITE_P(EdgeCounts, ErdosRenyiTest,
                         ::testing::Values(35, 45, 60, 90, 150, 300));

TEST(TopologiesTest, ErdosRenyiBoundsChecked)
{
    Rng rng(2);
    EXPECT_DEATH(makeConnectedErdosRenyi(10, 8, rng), "few edges");
    EXPECT_DEATH(makeConnectedErdosRenyi(10, 46, rng), "pairs");
}

class SparseConnectedTest
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SparseConnectedTest, ConnectedWithExactEdges)
{
    const std::size_t m = GetParam();
    Rng rng(m * 7 + 1);
    const auto g = makeRandomConnectedGraph(50, m, rng);
    EXPECT_EQ(g.numVertices(), 50u);
    EXPECT_EQ(g.numEdges(), m);
    EXPECT_TRUE(g.isConnected());
}

INSTANTIATE_TEST_SUITE_P(EdgeCounts, SparseConnectedTest,
                         ::testing::Values(49, 55, 70, 100, 200));

TEST(TopologiesTest, SparseConnectedBoundsChecked)
{
    Rng rng(9);
    EXPECT_DEATH(makeRandomConnectedGraph(10, 8, rng), "few edges");
    EXPECT_DEATH(makeRandomConnectedGraph(10, 46, rng), "pairs");
}

TEST(TopologiesTest, TwoTierFabricShape)
{
    // 10 servers in racks of 4 -> 3 ToR switches + 1 core.
    const auto g = makeTwoTierFabric(10, 4);
    EXPECT_EQ(g.numVertices(), 14u);
    EXPECT_TRUE(g.isConnected());
    // Every server leaf has degree 1.
    for (std::size_t s = 0; s < 10; ++s)
        EXPECT_EQ(g.degree(s), 1u);
    // First ToR connects 4 servers + core.
    EXPECT_EQ(g.degree(10), 5u);
    // Core connects the 3 ToRs.
    EXPECT_EQ(g.degree(13), 3u);
}

TEST(TopologiesTest, AverageDegreeGrowsWithEdges)
{
    Rng rng(3);
    const auto sparse = makeConnectedErdosRenyi(40, 45, rng);
    const auto dense = makeConnectedErdosRenyi(40, 200, rng);
    EXPECT_LT(sparse.averageDegree(), dense.averageDegree());
}

TEST(TopologiesTest, HealableRingWiresSparesOnTop)
{
    Rng rng(7);
    std::vector<std::pair<std::size_t, std::size_t>> spares;
    const auto g = makeHealableRing(16, 4, 6, rng, &spares);
    EXPECT_EQ(g.numEdges(), 16u + 4u + 6u);
    ASSERT_EQ(spares.size(), 6u);
    for (const auto &[u, v] : spares) {
        EXPECT_LT(u, v); // canonical orientation
        EXPECT_TRUE(g.hasEdge(u, v));
    }
    EXPECT_TRUE(g.isConnected());
    // Determinism: the same seed wires the same spares.
    Rng rng2(7);
    std::vector<std::pair<std::size_t, std::size_t>> spares2;
    makeHealableRing(16, 4, 6, rng2, &spares2);
    EXPECT_EQ(spares, spares2);
}

TEST(TopologiesTest, HealableRingValidation)
{
    Rng rng(8);
    EXPECT_DEATH(makeHealableRing(8, 2, 2, rng, nullptr), "spare");
    std::vector<std::pair<std::size_t, std::size_t>> spares;
    // 8 nodes: ring 8 + chords + spares can't exceed C(8,2) - 8.
    EXPECT_DEATH(makeHealableRing(8, 10, 11, rng, &spares), "");
}

TEST(TopologiesTest, RepairProposalsBridgeComponents)
{
    // Path 0-1-2-3 with edge {1,2} down, plus disabled candidates
    // {0,3} (bridges) and {0,1} (redundant, already live).
    using Edge = std::pair<std::size_t, std::size_t>;
    const std::vector<Edge> overlay = {
        {0, 1}, {1, 2}, {2, 3}, {0, 3}};
    const std::vector<std::uint8_t> candidate = {0, 0, 0, 1};
    const std::vector<std::uint8_t> alive = {1, 1, 1, 1};
    const std::vector<std::uint32_t> comp = {0, 0, 1, 1};
    const std::vector<std::size_t> deg = {1, 1, 1, 1};
    const auto picks =
        proposeOverlayRepairs(overlay, candidate, alive, comp,
                              /*num_comps=*/2, deg,
                              /*degree_floor=*/1);
    ASSERT_EQ(picks.size(), 1u);
    EXPECT_EQ(picks[0], (Edge{0, 3}));
}

TEST(TopologiesTest, RepairProposalsTopUpDegreeFloor)
{
    // Connected triangle 0-1-2 where node 3 hangs off node 0 by a
    // single live edge; a spare {1, 3} brings it to the floor.
    using Edge = std::pair<std::size_t, std::size_t>;
    const std::vector<Edge> overlay = {
        {0, 1}, {1, 2}, {0, 2}, {0, 3}, {1, 3}};
    const std::vector<std::uint8_t> candidate = {0, 0, 0, 0, 1};
    const std::vector<std::uint8_t> alive = {1, 1, 1, 1};
    const std::vector<std::uint32_t> comp = {0, 0, 0, 0};
    const std::vector<std::size_t> deg = {3, 2, 2, 1};
    const auto picks =
        proposeOverlayRepairs(overlay, candidate, alive, comp,
                              /*num_comps=*/1, deg,
                              /*degree_floor=*/2);
    ASSERT_EQ(picks.size(), 1u);
    EXPECT_EQ(picks[0], (Edge{1, 3}));
}

TEST(TopologiesTest, RepairProposalsRespectCapacity)
{
    // Two components but no candidate that bridges them: the
    // healer proposes nothing rather than something wrong.
    using Edge = std::pair<std::size_t, std::size_t>;
    const std::vector<Edge> overlay = {{0, 1}, {2, 3}, {0, 2}};
    const std::vector<std::uint8_t> candidate = {0, 0, 0};
    const std::vector<std::uint8_t> alive = {1, 1, 1, 1};
    const std::vector<std::uint32_t> comp = {0, 0, 1, 1};
    const std::vector<std::size_t> deg = {1, 1, 1, 1};
    const auto picks =
        proposeOverlayRepairs(overlay, candidate, alive, comp, 2,
                              deg, 1);
    EXPECT_TRUE(picks.empty());
}

} // namespace
} // namespace dpc
