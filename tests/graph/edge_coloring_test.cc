#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/edge_coloring.hh"
#include "graph/graph.hh"
#include "graph/topologies.hh"
#include "util/rng.hh"

namespace dpc {
namespace {

using EdgeList = std::vector<std::pair<std::size_t, std::size_t>>;

/** Canonical (u < v, ascending) edge list of a graph; index in the
 * returned vector is the edge id. */
EdgeList
canonicalEdges(const Graph &g)
{
    EdgeList edges;
    for (std::size_t u = 0; u < g.numVertices(); ++u)
        for (const std::size_t v : g.neighbors(u))
            if (u < v)
                edges.emplace_back(u, v);
    return edges;
}

/** Per-vertex degree of the live subgraph. */
std::size_t
maxLiveDegree(const EdgeList &edges,
              const std::vector<std::uint8_t> &live,
              std::size_t n)
{
    std::vector<std::size_t> deg(n, 0);
    for (std::size_t id = 0; id < edges.size(); ++id)
        if (live[id]) {
            ++deg[edges[id].first];
            ++deg[edges[id].second];
        }
    return *std::max_element(deg.begin(), deg.end());
}

/** Audit the three schedule properties the sweep engine relies on:
 * every live edge in exactly one matching, matchings vertex-
 * disjoint, dead edges colorless. */
void
expectValidSchedule(const EdgeColoring &col, const EdgeList &edges,
                    const std::vector<std::uint8_t> &live,
                    std::size_t n)
{
    std::vector<std::size_t> seen(edges.size(), 0);
    for (std::size_t c = 0; c < col.numColors(); ++c) {
        std::vector<std::uint8_t> used(n, 0);
        for (const std::uint32_t id : col.matching(c)) {
            ++seen[id];
            EXPECT_EQ(col.colorOf(id), c);
            const auto &[u, v] = edges[id];
            EXPECT_FALSE(used[u])
                << "vertex " << u << " twice in matching " << c;
            EXPECT_FALSE(used[v])
                << "vertex " << v << " twice in matching " << c;
            used[u] = used[v] = 1;
        }
    }
    for (std::size_t id = 0; id < edges.size(); ++id) {
        EXPECT_EQ(seen[id], live[id] ? 1u : 0u)
            << "edge " << id << " covered " << seen[id]
            << " times";
        if (!live[id]) {
            EXPECT_EQ(col.colorOf(id), EdgeColoring::kNoColor);
        }
    }
}

/** Check the greedy fixed point directly: every live edge's color
 * is the smallest color unused by any live lower-id incident
 * edge. */
void
expectGreedyFixedPoint(const EdgeColoring &col,
                       const EdgeList &edges,
                       const std::vector<std::uint8_t> &live)
{
    for (std::size_t e = 0; e < edges.size(); ++e) {
        if (!live[e])
            continue;
        std::vector<std::uint8_t> taken;
        for (std::size_t f = 0; f < e; ++f) {
            if (!live[f])
                continue;
            const bool incident =
                edges[f].first == edges[e].first ||
                edges[f].first == edges[e].second ||
                edges[f].second == edges[e].first ||
                edges[f].second == edges[e].second;
            if (!incident)
                continue;
            const std::uint32_t c = col.colorOf(f);
            if (c >= taken.size())
                taken.resize(c + 1, 0);
            taken[c] = 1;
        }
        std::uint32_t mex = 0;
        while (mex < taken.size() && taken[mex])
            ++mex;
        EXPECT_EQ(col.colorOf(e), mex)
            << "edge " << e << " is not at the greedy fixed point";
    }
}

TEST(EdgeColoringTest, EveryLiveEdgeExactlyOnceAndDisjoint)
{
    Rng topo(7);
    const std::size_t n = 96;
    const Graph g = makeChordalRing(n, n / 4, topo);
    const EdgeList edges = canonicalEdges(g);
    const std::vector<std::uint8_t> live(edges.size(), 1);

    EdgeColoring col;
    col.build(n, edges);
    EXPECT_EQ(col.numLiveEdges(), edges.size());
    expectValidSchedule(col, edges, live, n);
    expectGreedyFixedPoint(col, edges, live);
}

TEST(EdgeColoringTest, GreedyBoundOnColorCount)
{
    Rng topo(11);
    const std::size_t n = 128;
    const Graph g = makeChordalRing(n, n / 2, topo);
    const EdgeList edges = canonicalEdges(g);
    const std::vector<std::uint8_t> live(edges.size(), 1);

    EdgeColoring col;
    col.build(n, edges);
    EXPECT_LE(col.numColors(),
              2 * maxLiveDegree(edges, live, n) - 1);
}

TEST(EdgeColoringTest, DeterministicPureFunctionOfLiveSet)
{
    Rng topo(3);
    const std::size_t n = 64;
    const Graph g = makeChordalRing(n, n / 4, topo);
    const EdgeList edges = canonicalEdges(g);
    std::vector<std::uint8_t> live(edges.size(), 1);
    for (std::size_t id = 0; id < edges.size(); id += 5)
        live[id] = 0;

    EdgeColoring a;
    a.build(n, edges, &live);
    // Same live set reached through a completely different
    // history: build fully live, then kill the same edges one by
    // one (descending, for contrast).
    EdgeColoring b;
    b.build(n, edges);
    for (std::size_t id = edges.size(); id-- > 0;)
        if (!live[id])
            b.setEdgeLive(static_cast<std::uint32_t>(id), false);

    for (std::size_t id = 0; id < edges.size(); ++id)
        EXPECT_EQ(a.colorOf(id), b.colorOf(id))
            << "coloring depends on construction history at edge "
            << id;
}

TEST(EdgeColoringTest, IncrementalRepairEqualsFreshRebuild)
{
    Rng topo(19);
    const std::size_t n = 80;
    const Graph g = makeChordalRing(n, n / 4, topo);
    const EdgeList edges = canonicalEdges(g);
    std::vector<std::uint8_t> live(edges.size(), 1);

    EdgeColoring incremental;
    incremental.build(n, edges);

    // 200 random liveness flips; after each, the repaired coloring
    // must equal a from-scratch build of the current live set and
    // stay a valid schedule.
    Rng churn(23);
    for (int step = 0; step < 200; ++step) {
        const std::uint32_t id =
            static_cast<std::uint32_t>(churn.index(edges.size()));
        live[id] ^= 1;
        incremental.setEdgeLive(id, live[id] != 0);

        EdgeColoring fresh;
        fresh.build(n, edges, &live);
        for (std::size_t e = 0; e < edges.size(); ++e)
            ASSERT_EQ(incremental.colorOf(e), fresh.colorOf(e))
                << "repair diverged from fresh build at step "
                << step << ", edge " << e;
    }
    expectValidSchedule(incremental, edges, live, n);
    expectGreedyFixedPoint(incremental, edges, live);
}

TEST(EdgeColoringTest, SetEdgeLiveIsIdempotent)
{
    const Graph g = makeRing(16);
    const EdgeList edges = canonicalEdges(g);
    EdgeColoring col;
    col.build(16, edges);
    const std::size_t colors = col.numColors();
    col.setEdgeLive(3, true); // already live: no-op
    EXPECT_EQ(col.numColors(), colors);
    EXPECT_EQ(col.numLiveEdges(), edges.size());
    col.setEdgeLive(3, false);
    col.setEdgeLive(3, false); // already dead: no-op
    EXPECT_EQ(col.numLiveEdges(), edges.size() - 1);
    EXPECT_EQ(col.colorOf(3), EdgeColoring::kNoColor);
}

} // namespace
} // namespace dpc
