#include <gtest/gtest.h>

#include "graph/components.hh"

namespace dpc {
namespace {

/** Wire vertices [0, n) into a path 0-1-2-...-(n-1). */
void
wirePath(ComponentTracker &t, std::size_t n)
{
    for (std::size_t i = 0; i + 1 < n; ++i)
        t.edgeUp(i, i + 1);
}

TEST(ComponentTrackerTest, FreshTrackerIsAllSingletons)
{
    ComponentTracker t(5);
    EXPECT_EQ(t.size(), 5u);
    EXPECT_EQ(t.numComponents(), 5u);
    EXPECT_FALSE(t.connected());
    for (std::size_t v = 0; v < 5; ++v)
        EXPECT_TRUE(t.nodeIsUp(v));
    // Dense labels ascend with the lowest vertex id of each
    // component; singletons are their own component.
    for (std::size_t v = 0; v < 5; ++v)
        EXPECT_EQ(t.componentOf(v), static_cast<std::uint32_t>(v));
}

TEST(ComponentTrackerTest, EdgesMergeIncrementally)
{
    ComponentTracker t(6);
    wirePath(t, 6);
    EXPECT_EQ(t.numComponents(), 1u);
    EXPECT_TRUE(t.connected());
    for (std::size_t v = 0; v < 6; ++v)
        EXPECT_EQ(t.componentOf(v), 0u);
    EXPECT_EQ(t.componentSize(0), 6u);
}

TEST(ComponentTrackerTest, EdgeDownSplitsLazily)
{
    ComponentTracker t(6);
    wirePath(t, 6);
    t.edgeDown(2, 3);
    EXPECT_EQ(t.numComponents(), 2u);
    EXPECT_EQ(t.componentOf(0), 0u);
    EXPECT_EQ(t.componentOf(2), 0u);
    EXPECT_EQ(t.componentOf(3), 1u);
    EXPECT_EQ(t.componentOf(5), 1u);
    EXPECT_EQ(t.componentSize(0), 3u);
    EXPECT_EQ(t.componentSize(1), 3u);
    EXPECT_FALSE(t.edgeIsUp(2, 3));
    EXPECT_TRUE(t.edgeIsUp(3, 2) == false); // orientation-free
    // Re-enabling heals the split.
    t.edgeUp(2, 3);
    EXPECT_EQ(t.numComponents(), 1u);
}

TEST(ComponentTrackerTest, NodeDownRemovesItsEdges)
{
    ComponentTracker t(5);
    wirePath(t, 5); // 0-1-2-3-4
    t.nodeDown(2);
    EXPECT_EQ(t.numComponents(), 2u);
    EXPECT_EQ(t.componentOf(2), ComponentTracker::kNoComponent);
    EXPECT_EQ(t.componentOf(1), 0u);
    EXPECT_EQ(t.componentOf(3), 1u);
    // The node's edges were only masked, not forgotten: when it
    // comes back the path is whole again.
    t.nodeUp(2);
    EXPECT_EQ(t.numComponents(), 1u);
}

TEST(ComponentTrackerTest, VersionBumpsOnlyOnLabelChanges)
{
    ComponentTracker t(4);
    wirePath(t, 4);
    const std::uint64_t v0 = t.version();
    // Queries without mutations keep the version.
    EXPECT_EQ(t.numComponents(), 1u);
    EXPECT_EQ(t.version(), v0);
    // An edge inside one component changes nothing.
    t.edgeUp(0, 2);
    EXPECT_EQ(t.numComponents(), 1u);
    EXPECT_EQ(t.version(), v0);
    // A real split advances it.
    t.edgeUp(0, 3); // ring now
    t.edgeDown(1, 2);
    EXPECT_EQ(t.numComponents(), 1u); // still a path via 3
    t.edgeDown(0, 3);
    t.edgeDown(0, 2);
    EXPECT_EQ(t.numComponents(), 2u);
    EXPECT_GT(t.version(), v0);
}

TEST(ComponentTrackerTest, LabelsAreDenseAndOrderedByLowestId)
{
    ComponentTracker t(7);
    // {0, 4}, {1, 5}, {2}, {3, 6}
    t.edgeUp(0, 4);
    t.edgeUp(1, 5);
    t.edgeUp(3, 6);
    EXPECT_EQ(t.numComponents(), 4u);
    EXPECT_EQ(t.componentOf(0), 0u);
    EXPECT_EQ(t.componentOf(4), 0u);
    EXPECT_EQ(t.componentOf(1), 1u);
    EXPECT_EQ(t.componentOf(5), 1u);
    EXPECT_EQ(t.componentOf(2), 2u);
    EXPECT_EQ(t.componentOf(3), 3u);
    EXPECT_EQ(t.componentOf(6), 3u);
    const auto &labels = t.labels();
    ASSERT_EQ(labels.size(), 7u);
    for (std::size_t v = 0; v < 7; ++v)
        EXPECT_EQ(labels[v], t.componentOf(v));
}

TEST(ComponentTrackerTest, AllNodesDownIsZeroComponents)
{
    ComponentTracker t(3);
    wirePath(t, 3);
    for (std::size_t v = 0; v < 3; ++v)
        t.nodeDown(v);
    EXPECT_EQ(t.numComponents(), 0u);
    EXPECT_TRUE(t.connected()); // vacuously (<= 1)
}

TEST(ComponentTrackerTest, OperationsAreIdempotent)
{
    ComponentTracker t(4);
    t.edgeUp(0, 1);
    t.edgeUp(1, 0); // same edge, flipped
    t.edgeUp(0, 1);
    EXPECT_EQ(t.numComponents(), 3u);
    t.nodeDown(3);
    t.nodeDown(3);
    EXPECT_EQ(t.numComponents(), 2u);
    t.nodeUp(3);
    t.nodeUp(3);
    EXPECT_EQ(t.numComponents(), 3u);
}

} // namespace
} // namespace dpc
