#include <gtest/gtest.h>

#include <cmath>

#include "model/utility.hh"
#include "util/rng.hh"

namespace dpc {
namespace {

TEST(QuadraticUtilityTest, ValueAndDerivative)
{
    // r(p) = 1 + 0.02 p - 0.0001 p^2 on [50, 150].
    QuadraticUtility u(1.0, 0.02, -0.0001, 50.0, 150.0);
    EXPECT_DOUBLE_EQ(u.value(100.0), 1.0 + 2.0 - 1.0);
    EXPECT_DOUBLE_EQ(u.derivative(100.0), 0.02 - 0.02);
    // Clamping below/above the box.
    EXPECT_DOUBLE_EQ(u.value(0.0), u.value(50.0));
    EXPECT_DOUBLE_EQ(u.value(500.0), u.value(150.0));
}

TEST(QuadraticUtilityTest, RejectsConvex)
{
    EXPECT_DEATH(QuadraticUtility(0.0, 0.0, 1e-3, 0.0, 1.0),
                 "concave");
}

TEST(QuadraticUtilityTest, BestResponseInteriorAndClamped)
{
    QuadraticUtility u(1.0, 0.02, -0.0001, 50.0, 150.0);
    // Unconstrained peak of value - lambda p at (lambda - b)/(2c).
    EXPECT_NEAR(u.bestResponse(0.0), 100.0, 1e-12);
    EXPECT_NEAR(u.bestResponse(0.01), 50.0, 1e-12);
    // Steep price drives to the floor.
    EXPECT_DOUBLE_EQ(u.bestResponse(1.0), 50.0);
}

TEST(QuadraticUtilityTest, LinearDegenerateBestResponseIsBangBang)
{
    QuadraticUtility u(0.0, 0.01, 0.0, 10.0, 20.0);
    EXPECT_DOUBLE_EQ(u.bestResponse(0.005), 20.0);
    EXPECT_DOUBLE_EQ(u.bestResponse(0.02), 10.0);
}

TEST(QuadraticUtilityTest, FromShapeEndpoints)
{
    const auto u =
        QuadraticUtility::fromShape(0.6, 0.5, 120.0, 220.0, 2.0);
    EXPECT_NEAR(u.value(120.0), 1.2, 1e-12);
    EXPECT_NEAR(u.value(220.0), 2.0, 1e-12);
    // Monotone over the box for kappa <= 1.
    EXPECT_GE(u.derivative(220.0), -1e-12);
    EXPECT_GT(u.derivative(120.0), 0.0);
}

TEST(QuadraticUtilityTest, FromShapeKappaControlsCurvature)
{
    const auto lin =
        QuadraticUtility::fromShape(0.5, 0.0, 100.0, 200.0);
    const auto sat =
        QuadraticUtility::fromShape(0.5, 1.0, 100.0, 200.0);
    // Same endpoints.
    EXPECT_NEAR(lin.value(100.0), sat.value(100.0), 1e-12);
    EXPECT_NEAR(lin.value(200.0), sat.value(200.0), 1e-12);
    // Saturating curve is above the chord at the midpoint.
    EXPECT_GT(sat.value(150.0), lin.value(150.0));
    // Zero slope at the top for kappa = 1.
    EXPECT_NEAR(sat.derivative(200.0), 0.0, 1e-12);
}

TEST(QuadraticUtilityTest, PeakOfShapeAtMaxPower)
{
    const auto u =
        QuadraticUtility::fromShape(0.7, 0.8, 120.0, 220.0);
    EXPECT_NEAR(u.peakPower(), 220.0, 1e-9);
    EXPECT_NEAR(u.peakValue(), 1.0, 1e-12);
}

TEST(QuadraticUtilityTest, FitSamplesRecoversCurve)
{
    const auto truth =
        QuadraticUtility::fromShape(0.6, 0.7, 130.0, 165.0, 3.0);
    std::vector<double> ps, rs;
    for (double p = 130.0; p <= 165.0; p += 5.0) {
        ps.push_back(p);
        rs.push_back(truth.value(p));
    }
    const auto fit = QuadraticUtility::fitSamples(ps, rs);
    for (double p = 130.0; p <= 165.0; p += 1.0)
        EXPECT_NEAR(fit.value(p), truth.value(p), 1e-9);
}

TEST(QuadraticUtilityTest, FitSamplesConvexNoiseFallsBackToLinear)
{
    // Convex-looking samples: the constrained fit must drop to the
    // boundary c = 0 rather than produce a convex quadratic.
    const std::vector<double> ps{1.0, 2.0, 3.0, 4.0};
    const std::vector<double> rs{1.0, 1.1, 1.4, 1.9};
    const auto fit = QuadraticUtility::fitSamples(ps, rs);
    EXPECT_EQ(fit.coeffC(), 0.0);
}

TEST(PiecewiseLinearUtilityTest, InterpolatesSamples)
{
    PiecewiseLinearUtility u({0.0, 1.0, 3.0}, {0.0, 2.0, 4.0});
    EXPECT_DOUBLE_EQ(u.value(0.5), 1.0);
    EXPECT_DOUBLE_EQ(u.value(2.0), 3.0);
    EXPECT_DOUBLE_EQ(u.derivative(0.5), 2.0);
    EXPECT_DOUBLE_EQ(u.derivative(2.0), 1.0);
    // Clamped outside the box.
    EXPECT_DOUBLE_EQ(u.value(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(u.value(9.0), 4.0);
}

TEST(PiecewiseLinearUtilityTest, BestResponseViaBisection)
{
    // Concave samples; generic bisection best response applies.
    PiecewiseLinearUtility u({0.0, 1.0, 2.0}, {0.0, 1.0, 1.5});
    // Price between the two slopes picks the kink.
    EXPECT_NEAR(u.bestResponse(0.75), 1.0, 1e-6);
    // Price below every slope picks the top.
    EXPECT_NEAR(u.bestResponse(0.1), 2.0, 1e-6);
}

TEST(PiecewiseLinearUtilityTest, RejectsBadSamples)
{
    EXPECT_DEATH(PiecewiseLinearUtility({1.0, 1.0}, {0.0, 1.0}),
                 "increasing");
    EXPECT_DEATH(PiecewiseLinearUtility({1.0}, {0.0}), "two samples");
}

/** Property sweep: best response solves the priced problem. */
class BestResponseProperty
    : public ::testing::TestWithParam<double>
{
};

TEST_P(BestResponseProperty, MaximizesPricedObjective)
{
    Rng rng(static_cast<std::uint64_t>(GetParam() * 1000));
    for (int trial = 0; trial < 25; ++trial) {
        const double r0 = rng.uniform(0.2, 0.95);
        const double kappa = rng.uniform(0.0, 1.0);
        const auto u = QuadraticUtility::fromShape(
            r0, kappa, 120.0, 220.0, rng.uniform(0.5, 3.0));
        const double lambda = GetParam();
        const double star = u.bestResponse(lambda);
        const double best = u.value(star) - lambda * star;
        for (double p = 120.0; p <= 220.0; p += 2.5) {
            EXPECT_LE(u.value(p) - lambda * p, best + 1e-9)
                << "lambda=" << lambda << " p=" << p;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(PriceSweep, BestResponseProperty,
                         ::testing::Values(0.0, 0.001, 0.003, 0.006,
                                           0.01, 0.05));

} // namespace
} // namespace dpc
