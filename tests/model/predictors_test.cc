#include <gtest/gtest.h>

#include "model/predictors.hh"
#include "util/rng.hh"

namespace dpc {
namespace {

std::vector<CharacterizationCurve>
trainSet()
{
    Rng rng(101);
    return makeCharacterizationSet(240, rng);
}

std::vector<CharacterizationCurve>
testSet()
{
    Rng rng(202);
    return makeCharacterizationSet(120, rng);
}

TEST(CharacterizationTest, CurvesAreWellFormed)
{
    Rng rng(1);
    const auto curves = makeCharacterizationSet(50, rng);
    ASSERT_EQ(curves.size(), 50u);
    for (const auto &c : curves) {
        EXPECT_GE(c.llc, 0.0);
        EXPECT_LE(c.llc, 1.0);
        ASSERT_EQ(c.caps.size(), 8u);
        EXPECT_DOUBLE_EQ(c.caps.front(), 130.0);
        EXPECT_DOUBLE_EQ(c.caps.back(), 165.0);
        for (double t : c.taus)
            EXPECT_GT(t, 0.0);
        // Throughput roughly non-decreasing in the cap (noise may
        // flip adjacent samples but the ends must be ordered).
        EXPECT_GT(c.taus.back(), c.taus.front());
    }
}

TEST(CharacterizationTest, LlcDrivesSaturation)
{
    Rng rng(2);
    const auto curves = makeCharacterizationSet(400, rng, 0.0);
    // Average relative gain from min to max cap, split by LLC.
    double gain_lo = 0.0, gain_hi = 0.0;
    int n_lo = 0, n_hi = 0;
    for (const auto &c : curves) {
        const double gain = c.taus.back() / c.taus.front() - 1.0;
        if (c.llc < 0.3) {
            gain_lo += gain;
            ++n_lo;
        } else if (c.llc > 0.7) {
            gain_hi += gain;
            ++n_hi;
        }
    }
    ASSERT_GT(n_lo, 0);
    ASSERT_GT(n_hi, 0);
    // Memory-bound (high LLC) curves gain much less from power.
    EXPECT_GT(gain_lo / n_lo, 2.0 * (gain_hi / n_hi));
}

TEST(PredictorsTest, AllFamiliesTrainAndPredict)
{
    const auto train = trainSet();
    for (auto &p : makeAllPredictors()) {
        p->train(train);
        ServerObservation obs{145.0, 2.0, 0.5};
        const auto curve = p->predict(obs);
        // The curve is finite over the cap range.
        for (double cap = 130.0; cap <= 165.0; cap += 5.0)
            EXPECT_TRUE(std::isfinite(curve(cap))) << p->name();
    }
}

TEST(PredictorsTest, ProposedModelErrorIsSmall)
{
    auto pred = makeQuadraticLlcTpPredictor();
    pred->train(trainSet());
    const double err = evaluatePredictor(*pred, testSet());
    // Table 3.2 reports 1.37%; the synthetic database should land
    // in the same few-percent regime.
    EXPECT_LT(err, 0.03);
}

TEST(PredictorsTest, Table32OrderingHolds)
{
    const auto train = trainSet();
    const auto test = testSet();
    auto preds = makeAllPredictors();
    std::vector<double> errs;
    for (auto &p : preds) {
        p->train(train);
        errs.push_back(evaluatePredictor(*p, test));
    }
    // Proposed quadratic-LLC+TP beats every other family.
    for (std::size_t i = 1; i < errs.size(); ++i)
        EXPECT_LT(errs[0], errs[i]) << preds[i]->name();
    // Workload-aware models beat the fixed global shapes.
    const double fixed_best = std::min(errs[4], errs[5]);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_LT(errs[i], fixed_best) << preds[i]->name();
}

TEST(PredictorsTest, AnchoredModelsPassThroughObservation)
{
    const auto train = trainSet();
    auto quad = makeQuadraticLlcTpPredictor();
    quad->train(train);
    auto lin = makeLinearLlcTpPredictor();
    lin->train(train);
    ServerObservation obs{150.0, 1.8, 0.4};
    EXPECT_NEAR(quad->predict(obs)(150.0), 1.8, 1e-9);
    EXPECT_NEAR(lin->predict(obs)(150.0), 1.8, 1e-9);
}

TEST(PredictorsTest, NamesMatchTableRows)
{
    const auto preds = makeAllPredictors();
    ASSERT_EQ(preds.size(), 6u);
    EXPECT_EQ(preds[0]->name(), "quadratic-LLC+TP");
    EXPECT_EQ(preds[1]->name(), "linear-LLC+TP");
    EXPECT_EQ(preds[2]->name(), "linear-TP");
    EXPECT_EQ(preds[3]->name(), "exponential-LLC");
    EXPECT_EQ(preds[4]->name(), "previous-cubic");
    EXPECT_EQ(preds[5]->name(), "previous-linear");
}

} // namespace
} // namespace dpc
