#include <gtest/gtest.h>

#include "metrics/performance.hh"
#include "tests/alloc/test_problems.hh"

namespace dpc {
namespace {

TEST(MetricsTest, AnpIsOneAtPeak)
{
    const auto u =
        QuadraticUtility::fromShape(0.6, 0.5, 120.0, 220.0, 2.0);
    EXPECT_NEAR(anp(u, 220.0), 1.0, 1e-12);
    EXPECT_NEAR(anp(u, 120.0), 0.6, 1e-12);
}

TEST(MetricsTest, AnpVectorAligns)
{
    const auto prob = test::tinyProblem();
    const auto anps =
        anpVector(prob.utilities, {150.0, 150.0});
    ASSERT_EQ(anps.size(), 2u);
    for (double a : anps) {
        EXPECT_GT(a, 0.0);
        EXPECT_LE(a, 1.0);
    }
}

TEST(MetricsTest, SnpDefinitions)
{
    const std::vector<double> anps{0.5, 1.0};
    EXPECT_DOUBLE_EQ(snpArithmetic(anps), 0.75);
    EXPECT_NEAR(snpGeometric(anps), std::sqrt(0.5), 1e-12);
}

TEST(MetricsTest, SlowdownNorm)
{
    const std::vector<double> anps{0.5, 1.0};
    EXPECT_DOUBLE_EQ(slowdownNorm(anps), 1.5);
    EXPECT_DEATH(slowdownNorm({0.0, 1.0}), "positive");
}

TEST(MetricsTest, UnfairnessZeroWhenEqual)
{
    EXPECT_NEAR(unfairness({0.7, 0.7, 0.7}), 0.0, 1e-12);
    EXPECT_GT(unfairness({0.2, 0.9}), 0.0);
}

TEST(MetricsTest, TotalUtilityMatchesSum)
{
    const auto prob = test::tinyProblem();
    const std::vector<double> p{150.0, 160.0};
    const double expected = prob.utilities[0]->value(150.0) +
                            prob.utilities[1]->value(160.0);
    EXPECT_DOUBLE_EQ(totalUtility(prob.utilities, p), expected);
}

TEST(MetricsTest, EvaluateAllocationReport)
{
    const auto prob = test::tinyProblem();
    const auto rep =
        evaluateAllocation(prob.utilities, {150.0, 160.0});
    EXPECT_GT(rep.snp_arith, 0.0);
    EXPECT_LE(rep.snp_geo, rep.snp_arith + 1e-12); // AM-GM
    EXPECT_GE(rep.slowdown, 1.0);
    EXPECT_DOUBLE_EQ(rep.total_power, 310.0);
}

TEST(MetricsTest, WithinFractionOfOptimal)
{
    EXPECT_TRUE(withinFractionOfOptimal(99.5, 100.0, 0.99));
    EXPECT_FALSE(withinFractionOfOptimal(98.0, 100.0, 0.99));
    EXPECT_TRUE(withinFractionOfOptimal(0.0, 0.0, 0.99));
    EXPECT_DEATH(withinFractionOfOptimal(1.0, 1.0, 0.0),
                 "fraction");
}

} // namespace
} // namespace dpc
