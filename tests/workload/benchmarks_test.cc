#include <gtest/gtest.h>

#include "workload/benchmarks.hh"

namespace dpc {
namespace {

TEST(BenchmarksTest, SuiteMatchesTable41)
{
    const auto &suite = npbHpccBenchmarks();
    ASSERT_EQ(suite.size(), 10u);
    int npb = 0, hpcc = 0;
    for (const auto &b : suite) {
        if (b.suite == "NPB")
            ++npb;
        else if (b.suite == "HPCC")
            ++hpcc;
    }
    EXPECT_EQ(npb, 8);
    EXPECT_EQ(hpcc, 2);
}

TEST(BenchmarksTest, FindByName)
{
    EXPECT_EQ(findBenchmark("EP").suite, "NPB");
    EXPECT_EQ(findBenchmark("HPL").suite, "HPCC");
    EXPECT_DEATH(findBenchmark("nope"), "unknown benchmark");
}

TEST(BenchmarksTest, ShapesAreSane)
{
    for (const auto &b : npbHpccBenchmarks()) {
        EXPECT_GT(b.r0, 0.0) << b.name;
        EXPECT_LE(b.r0, 1.0) << b.name;
        EXPECT_GE(b.kappa, 0.0) << b.name;
        EXPECT_LE(b.kappa, 1.0) << b.name;
        EXPECT_LT(b.p_min, b.p_max) << b.name;
        const auto u = b.utility();
        // Normalized peak at the top of the box.
        EXPECT_NEAR(u.peakValue(), 1.0, 1e-9) << b.name;
        // Monotone non-decreasing over the box.
        EXPECT_GE(u.derivative(b.p_max), -1e-12) << b.name;
    }
}

TEST(BenchmarksTest, ComputeBoundGainsMoreThanMemoryBound)
{
    const auto ep = findBenchmark("EP").utility();  // compute bound
    const auto ra = findBenchmark("RA").utility();  // memory bound
    const double gain_ep =
        ep.value(220.0) / ep.value(120.0);
    const double gain_ra =
        ra.value(220.0) / ra.value(120.0);
    EXPECT_GT(gain_ep, 1.8);
    EXPECT_LT(gain_ra, 1.25);
}

TEST(BenchmarksTest, LlcCorrelatesWithSaturation)
{
    // Within the suite, higher LLC must imply higher curvature.
    const auto &suite = npbHpccBenchmarks();
    for (const auto &a : suite) {
        for (const auto &b : suite) {
            if (a.llc < b.llc - 0.3) {
                EXPECT_LT(a.kappa, b.kappa)
                    << a.name << " vs " << b.name;
            }
        }
    }
}

TEST(BenchmarksTest, SampleCurveMatchesUtilityUpToNoise)
{
    Rng rng(5);
    const auto &ep = findBenchmark("EP");
    std::vector<double> ps, ts;
    ep.sampleCurve(8, rng, 0.0, ps, ts);
    ASSERT_EQ(ps.size(), 8u);
    const auto u = ep.utility();
    for (std::size_t i = 0; i < ps.size(); ++i)
        EXPECT_NEAR(ts[i], u.value(ps[i]), 1e-12);
}

TEST(BenchmarksTest, UtilityPtrSharesShape)
{
    const auto &cg = findBenchmark("CG");
    const auto ptr = cg.utilityPtr();
    ASSERT_NE(ptr, nullptr);
    EXPECT_NEAR(ptr->value(170.0), cg.utility().value(170.0), 1e-12);
}

} // namespace
} // namespace dpc
