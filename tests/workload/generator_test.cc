#include <gtest/gtest.h>

#include <set>

#include "util/stats.hh"
#include "workload/generator.hh"

namespace dpc {
namespace {

TEST(GeneratorTest, NpbAssignmentCoversSuite)
{
    Rng rng(1);
    const auto a = drawNpbAssignment(64, rng);
    ASSERT_EQ(a.size(), 64u);
    std::set<std::string> names;
    for (const auto &w : a) {
        ASSERT_NE(w.utility, nullptr);
        names.insert(w.name);
    }
    EXPECT_EQ(names.size(), npbHpccBenchmarks().size());
}

TEST(GeneratorTest, SmallAssignmentStillValid)
{
    Rng rng(2);
    const auto a = drawNpbAssignment(3, rng);
    ASSERT_EQ(a.size(), 3u);
    for (const auto &w : a)
        ASSERT_NE(w.utility, nullptr);
}

TEST(GeneratorTest, SpecMixBoxesMatchChapter3Grid)
{
    Rng rng(3);
    for (auto kind : {MixKind::HomogeneousWithinServer,
                      MixKind::HeterogeneousWithinServer}) {
        const auto a = drawSpecMixAssignment(20, kind, rng);
        for (const auto &w : a) {
            EXPECT_DOUBLE_EQ(w.utility->minPower(), 130.0);
            EXPECT_DOUBLE_EQ(w.utility->maxPower(), 165.0);
        }
    }
}

TEST(GeneratorTest, HeterogeneousWithinAveragesCharacteristics)
{
    // Mixing four applications per server shrinks the spread of the
    // per-server ANP-at-minimum values (Ch.3's "averaging in
    // characteristics" for case b).
    Rng rng(4);
    auto spread = [&](MixKind kind) {
        const auto a = drawSpecMixAssignment(400, kind, rng);
        std::vector<double> r0s;
        for (const auto &w : a) {
            r0s.push_back(w.utility->value(130.0) /
                          w.utility->value(165.0));
        }
        return stddev(r0s);
    };
    const double homo = spread(MixKind::HomogeneousWithinServer);
    const double hetero =
        spread(MixKind::HeterogeneousWithinServer);
    EXPECT_LT(hetero, 0.7 * homo);
}

TEST(GeneratorTest, JobDurationsArePositiveWithRightMean)
{
    Rng rng(5);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i) {
        const double d = drawJobDuration(120.0, rng);
        EXPECT_GT(d, 0.0);
        xs.push_back(d);
    }
    EXPECT_NEAR(mean(xs), 120.0, 5.0);
}

TEST(GeneratorTest, UtilitiesOfExtractsAll)
{
    Rng rng(6);
    const auto a = drawNpbAssignment(12, rng);
    const auto us = utilitiesOf(a);
    ASSERT_EQ(us.size(), 12u);
    for (std::size_t i = 0; i < us.size(); ++i)
        EXPECT_EQ(us[i], a[i].utility);
}

} // namespace
} // namespace dpc
