#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "fault/detector.hh"

namespace dpc {
namespace {

using Overlay = std::vector<std::pair<std::size_t, std::size_t>>;

/** Triangle overlay: every node has degree 2. */
Overlay
triangle()
{
    return {{0, 1}, {1, 2}, {0, 2}};
}

/** One observation round where `missing` edges miss and the rest
 * deliver. */
void
round(FailureDetector &det, const Overlay &overlay,
      const std::vector<std::size_t> &missing)
{
    det.beginRound();
    for (std::size_t id = 0; id < overlay.size(); ++id) {
        bool miss = false;
        for (std::size_t m : missing)
            miss |= m == id;
        det.observeEdge(id, !miss);
    }
    det.endRound();
}

TEST(FailureDetectorTest, CleanRoundsRaiseNothing)
{
    const auto overlay = triangle();
    FailureDetector det(3, overlay);
    for (int r = 0; r < 50; ++r)
        round(det, overlay, {});
    EXPECT_EQ(det.stats().node_suspicions, 0u);
    EXPECT_EQ(det.stats().edge_suspicions, 0u);
    for (std::size_t v = 0; v < 3; ++v)
        EXPECT_FALSE(det.nodeSuspected(v));
}

TEST(FailureDetectorTest, DeadNodeFiresNodeVerdictBeforeEdgeCuts)
{
    const auto overlay = triangle();
    FailureDetector::Config cfg;
    cfg.node_suspect_after = 4;
    cfg.edge_suspect_after = 8;
    FailureDetector det(3, overlay, cfg);
    // Node 2 dies: edges {1,2} and {0,2} miss every round.
    for (int r = 0; r < 3; ++r) {
        round(det, overlay, {1, 2});
        EXPECT_FALSE(det.nodeSuspected(2));
    }
    round(det, overlay, {1, 2});
    EXPECT_TRUE(det.nodeSuspected(2));
    ASSERT_EQ(det.newlyDeadNodes().size(), 1u);
    EXPECT_EQ(det.newlyDeadNodes()[0], 2u);
    // The node verdict landed before any per-edge suspicion.
    EXPECT_EQ(det.stats().edge_suspicions, 0u);
    EXPECT_FALSE(det.nodeSuspected(0));
    EXPECT_FALSE(det.nodeSuspected(1));
}

TEST(FailureDetectorTest, SingleCutLinkIsAnEdgeVerdictOnly)
{
    const auto overlay = triangle();
    FailureDetector::Config cfg;
    cfg.node_suspect_after = 4;
    cfg.edge_suspect_after = 6;
    FailureDetector det(3, overlay, cfg);
    // Only edge {0,1} misses; both endpoints keep delivering on
    // their other edge, so no node streak ever forms.
    for (int r = 0; r < 5; ++r)
        round(det, overlay, {0});
    EXPECT_FALSE(det.edgeSuspected(0));
    round(det, overlay, {0});
    EXPECT_TRUE(det.edgeSuspected(0));
    ASSERT_EQ(det.newlySuspectedEdges().size(), 1u);
    EXPECT_EQ(det.newlySuspectedEdges()[0], 0u);
    EXPECT_EQ(det.stats().node_suspicions, 0u);
}

TEST(FailureDetectorTest, HysteresisClearsAFalsePositive)
{
    const auto overlay = triangle();
    FailureDetector::Config cfg;
    cfg.node_suspect_after = 2;
    cfg.edge_suspect_after = 4;
    cfg.trust_after = 3;
    FailureDetector det(3, overlay, cfg);
    // A short outage of node 2's edges trips the aggressive
    // detector...
    round(det, overlay, {1, 2});
    round(det, overlay, {1, 2});
    ASSERT_TRUE(det.nodeSuspected(2));
    EXPECT_EQ(det.stats().node_suspicions, 1u);
    // ...then deliveries resume.  One good round is not enough
    // (trust_after = 3)...
    round(det, overlay, {});
    round(det, overlay, {});
    EXPECT_TRUE(det.nodeSuspected(2));
    EXPECT_TRUE(det.newlyAliveNodes().empty());
    // ...the third clears the verdict.
    round(det, overlay, {});
    EXPECT_FALSE(det.nodeSuspected(2));
    ASSERT_EQ(det.newlyAliveNodes().size(), 1u);
    EXPECT_EQ(det.newlyAliveNodes()[0], 2u);
    EXPECT_EQ(det.stats().node_recoveries, 1u);
}

TEST(FailureDetectorTest, EdgeTrustRecoversWithHysteresis)
{
    const auto overlay = triangle();
    FailureDetector::Config cfg;
    cfg.edge_suspect_after = 3;
    cfg.trust_after = 2;
    FailureDetector det(3, overlay, cfg);
    for (int r = 0; r < 3; ++r)
        round(det, overlay, {2});
    ASSERT_TRUE(det.edgeSuspected(2));
    round(det, overlay, {});
    EXPECT_TRUE(det.edgeSuspected(2));
    round(det, overlay, {});
    EXPECT_FALSE(det.edgeSuspected(2));
    ASSERT_EQ(det.newlyTrustedEdges().size(), 1u);
    EXPECT_EQ(det.newlyTrustedEdges()[0], 2u);
}

TEST(FailureDetectorTest, UnobservedEdgesKeepTheirStreaks)
{
    const auto overlay = triangle();
    FailureDetector::Config cfg;
    cfg.edge_suspect_after = 4;
    FailureDetector det(3, overlay, cfg);
    // Two missing rounds, then rounds where edge 0 is simply not
    // observed: the streak must neither advance nor reset.
    round(det, overlay, {0});
    round(det, overlay, {0});
    for (int r = 0; r < 10; ++r) {
        det.beginRound();
        det.observeEdge(1, true);
        det.observeEdge(2, true);
        det.endRound();
    }
    EXPECT_FALSE(det.edgeSuspected(0));
    // Two more misses complete the original streak of 4.
    round(det, overlay, {0});
    round(det, overlay, {0});
    EXPECT_TRUE(det.edgeSuspected(0));
}

TEST(FailureDetectorTest, IsolatedNodeGathersNoEvidence)
{
    // A node none of whose edges were observed this round must not
    // accrue an all-miss streak (absence of evidence).
    const Overlay overlay = {{0, 1}};
    FailureDetector::Config cfg;
    cfg.node_suspect_after = 2;
    FailureDetector det(3, overlay, cfg); // node 2 has no edges
    for (int r = 0; r < 20; ++r)
        round(det, overlay, {});
    EXPECT_FALSE(det.nodeSuspected(2));
}

TEST(FailureDetectorTest, CalibratedThresholdsScaleWithLossAndDegree)
{
    // Heavier loss or lower degree needs longer streaks for the
    // same false-positive tolerance.
    const auto light =
        FailureDetector::Config::calibrated(4, 0.05, 1e-9);
    const auto heavy =
        FailureDetector::Config::calibrated(4, 0.40, 1e-9);
    const auto sparse =
        FailureDetector::Config::calibrated(2, 0.40, 1e-9);
    EXPECT_LE(light.node_suspect_after, heavy.node_suspect_after);
    EXPECT_LE(heavy.node_suspect_after, sparse.node_suspect_after);
    EXPECT_GE(light.node_suspect_after, 3u);
    EXPECT_LE(sparse.node_suspect_after, 64u);
    // Edge threshold stays above the node threshold so a dead node
    // reads as one node-death, not degree-many edge cuts.
    EXPECT_GT(heavy.edge_suspect_after, heavy.node_suspect_after);
}

TEST(FailureDetectorTest, ObserveOutsideRoundPanics)
{
    const auto overlay = triangle();
    FailureDetector det(3, overlay);
    EXPECT_DEATH(det.observeEdge(0, true), "outside a round");
}

} // namespace
} // namespace dpc
