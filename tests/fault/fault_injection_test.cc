/**
 * @file
 * Allocator-level fault injection: conservation under loss and
 * staleness, churn round trips, link partitions, and the
 * fixed-seed acceptance storm.
 */

#include <gtest/gtest.h>

#include "alloc/diba.hh"
#include "alloc/kkt.hh"
#include "fault/session.hh"
#include "graph/topologies.hh"
#include "metrics/performance.hh"
#include "tests/alloc/test_problems.hh"
#include "util/stats.hh"

namespace dpc {
namespace {

/** Conservation over the active set: sum e == sum p - P. */
void
expectConservation(const DibaAllocator &diba)
{
    double se = 0.0;
    for (std::size_t i = 0; i < diba.estimates().size(); ++i)
        if (diba.isActive(i))
            se += diba.estimates()[i];
    EXPECT_NEAR(se, diba.totalPower() - diba.budget(),
                1e-6 * diba.budget());
}

TEST(FaultInjectionTest, PerfectChannelIsBitwiseIdentical)
{
    const auto prob = test::npbProblem(48, 170.0, 41);
    Rng ta(9), tb(9);
    DibaAllocator a(makeChordalRing(48, 12, ta));
    DibaAllocator b(makeChordalRing(48, 12, tb));
    a.reset(prob);
    b.reset(prob);
    PerfectChannel chan;
    for (int it = 0; it < 600; ++it) {
        const double ma = a.iterate();
        const double mb = b.iterateWithChannel(chan);
        ASSERT_EQ(ma, mb) << "diverged at round " << it;
    }
    EXPECT_EQ(a.power(), b.power());
    EXPECT_EQ(a.estimates(), b.estimates());
}

TEST(FaultInjectionTest, GossipTicksConserveUnderHeavyLoss)
{
    const auto prob = test::npbProblem(32, 170.0, 42);
    Rng topo_rng(11);
    DibaAllocator diba(makeChordalRing(32, 8, topo_rng));
    diba.reset(prob);
    LossyChannel::Config cfg;
    cfg.drop_rate = 0.3;
    LossyChannel chan(cfg, 77);
    Rng rng(5);
    for (int t = 0; t < 10000; ++t) {
        diba.gossipTick(rng, chan);
        ASSERT_LT(diba.totalPower(), prob.budget)
            << "budget violated at tick " << t;
    }
    expectConservation(diba);
    // The transport really was faulty, and the allocator still
    // landed near the optimum.
    EXPECT_GT(chan.stats().dropped, 2000u);
    const auto opt = solveKkt(prob);
    const double u = totalUtility(prob.utilities, diba.power());
    EXPECT_TRUE(withinFractionOfOptimal(u, opt.utility, 0.97))
        << u << " vs " << opt.utility;
}

TEST(FaultInjectionTest, LossyRoundsConvergeAndConserve)
{
    const auto prob = test::npbProblem(48, 170.0, 43);
    Rng topo_rng(12);
    DibaAllocator diba(makeChordalRing(48, 12, topo_rng));
    diba.reset(prob);
    LossyChannel::Config cfg;
    cfg.drop_rate = 0.2;
    cfg.delay_rate = 0.2;
    cfg.max_lag = 3;
    LossyChannel chan(cfg, 123);
    InvariantChecker checker;
    for (int it = 0; it < 4000; ++it) {
        diba.stepWithChannel(chan);
        checker.check(diba);
    }
    EXPECT_EQ(checker.roundsChecked(), 4000u);
    EXPECT_LT(checker.worstResidual(), 1e-6 * prob.budget);
    EXPECT_GT(chan.stats().dropped, 0u);
    EXPECT_GT(chan.stats().stale, 0u);
    const auto opt = solveKkt(prob);
    const double u = totalUtility(prob.utilities, diba.power());
    EXPECT_TRUE(withinFractionOfOptimal(u, opt.utility, 0.97))
        << u << " vs " << opt.utility;
}

TEST(FaultInjectionTest, FailJoinRoundTripRestoresFixedPoint)
{
    const std::size_t n = 32;
    const auto prob = test::npbProblem(n, 170.0, 44);
    Rng topo_rng(13);
    DibaAllocator diba(makeChordalRing(n, 8, topo_rng));
    diba.reset(prob);
    for (int it = 0; it < 3000; ++it)
        diba.iterate();
    const double u_before =
        totalUtility(prob.utilities, diba.power());

    diba.failNode(9);
    EXPECT_FALSE(diba.isActive(9));
    for (int it = 0; it < 1500; ++it) {
        diba.iterate();
        ASSERT_LT(diba.totalPower(), prob.budget);
    }

    diba.joinNode(9);
    EXPECT_TRUE(diba.isActive(9));
    EXPECT_EQ(diba.numActive(), n);
    // Conservation holds across the event itself, and the node
    // re-enters at its floor.
    expectConservation(diba);
    EXPECT_NEAR(diba.power()[9], prob.utilities[9]->minPower(),
                1e-9);
    for (int it = 0; it < 6000; ++it) {
        diba.iterate();
        ASSERT_LT(diba.totalPower(), prob.budget);
    }
    // The rejoined node ramped back up and the cluster returned to
    // (its barrier approximation of) the original fixed point.
    EXPECT_GT(diba.power()[9],
              prob.utilities[9]->minPower() + 5.0);
    const double u_after =
        totalUtility(prob.utilities, diba.power());
    EXPECT_GT(u_after, 0.995 * u_before);
    expectConservation(diba);
}

TEST(FaultInjectionTest, PartitionKeepsPerPartitionGuarantees)
{
    // A plain ring so two link cuts split the overlay into two
    // arcs: nodes 1..8 and nodes 9..16(,0).
    const std::size_t n = 16;
    const auto prob = test::npbProblem(n, 170.0, 45);
    DibaAllocator diba(makeRing(n));
    diba.reset(prob);
    for (int it = 0; it < 800; ++it)
        diba.iterate();

    diba.setEdgeEnabled(0, 1, false);
    diba.setEdgeEnabled(8, 9, false);
    EXPECT_FALSE(diba.edgeEnabled(0, 1));
    EXPECT_FALSE(diba.edgeEnabled(8, 9));
    EXPECT_EQ(diba.liveEdges().size(), n - 2);

    InvariantChecker checker;
    for (int it = 0; it < 800; ++it) {
        diba.iterate();
        // Strict slack on every node implies each partition (and
        // hence the whole cluster) honours the budget on its own.
        checker.check(diba);
    }
    // Each arc holds strictly negative slack of its own.
    double slack_a = 0.0, slack_b = 0.0;
    for (std::size_t i = 1; i <= 8; ++i)
        slack_a += diba.estimates()[i];
    for (std::size_t i = 9; i < n; ++i)
        slack_b += diba.estimates()[i];
    slack_b += diba.estimates()[0];
    EXPECT_LT(slack_a, 0.0);
    EXPECT_LT(slack_b, 0.0);

    // Heal both links: gossip resumes across the former boundary
    // and the cluster re-converges near the global optimum.
    diba.setEdgeEnabled(0, 1, true);
    diba.setEdgeEnabled(8, 9, true);
    EXPECT_EQ(diba.liveEdges().size(), n);
    for (int it = 0; it < 4000; ++it)
        diba.iterate();
    const auto opt = solveKkt(prob);
    const double u = totalUtility(prob.utilities, diba.power());
    EXPECT_TRUE(withinFractionOfOptimal(u, opt.utility, 0.98))
        << u << " vs " << opt.utility;
}

TEST(FaultInjectionTest, CutEdgeCarriesNoAsyncGossip)
{
    const auto prob = test::npbProblem(8, 170.0, 46);
    DibaAllocator diba(makeRing(8));
    diba.reset(prob);
    diba.setEdgeEnabled(3, 4, false);
    for (const auto &e : diba.liveEdges())
        EXPECT_FALSE(e.first == 3 && e.second == 4);
    Rng rng(21);
    for (int t = 0; t < 2000; ++t)
        diba.gossipTick(rng);
    expectConservation(diba);
    EXPECT_LT(diba.totalPower(), prob.budget);
}

/** The PR's acceptance storm: 1000 nodes, 20% pair loss, 5
 * crashes, 3 rejoins, fixed seed -- the invariant audit must pass
 * on every round and the trajectory must replay bit for bit. */
std::vector<double>
runAcceptanceStorm()
{
    const std::size_t n = 1000;
    const auto prob = test::npbProblem(n, 172.0, 50);
    Rng topo_rng(13);
    DibaAllocator diba(makeChordalRing(n, 200, topo_rng));
    diba.reset(prob);

    FaultPlan plan =
        FaultPlan::randomChurn(n, 5, 3, 380.0, 0xc0ffee);
    LossyChannel::Config loss;
    loss.drop_rate = 0.2;
    plan.loss(loss).seed(0xc0ffee);

    FaultSession session(diba, plan);
    session.run(400);
    EXPECT_EQ(session.checker().roundsChecked(), 400u);
    EXPECT_EQ(session.eventsApplied(), 8u);
    EXPECT_EQ(session.eventsSkipped(), 0u);
    EXPECT_EQ(diba.numActive(), n - 2);
    EXPECT_NEAR(session.channel().lossRate(), 0.2, 0.01);
    EXPECT_LT(diba.totalPower(), prob.budget);
    return diba.power();
}

TEST(FaultInjectionTest, AcceptanceStormIsDeterministic)
{
    const auto first = runAcceptanceStorm();
    const auto second = runAcceptanceStorm();
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        ASSERT_EQ(first[i], second[i])
            << "trajectory diverged at node " << i;
}

} // namespace
} // namespace dpc
