#include <gtest/gtest.h>

#include <set>

#include "alloc/diba.hh"
#include "fault/session.hh"
#include "graph/topologies.hh"
#include "tests/alloc/test_problems.hh"

namespace dpc {
namespace {

TEST(FaultPlanTest, SortedEventsAreTimeOrdered)
{
    FaultPlan plan;
    plan.crashAt(30.0, 1)
        .rejoinAt(90.0, 1)
        .cutLinkAt(10.0, 2, 3)
        .healLinkAt(60.0, 2, 3);
    const auto evs = plan.sortedEvents();
    ASSERT_EQ(evs.size(), 4u);
    for (std::size_t i = 1; i < evs.size(); ++i)
        EXPECT_LE(evs[i - 1].at, evs[i].at);
    EXPECT_EQ(evs.front().kind, FaultKind::LinkCut);
    EXPECT_EQ(evs.back().kind, FaultKind::NodeRejoin);
}

TEST(FaultPlanTest, RandomChurnIsWellFormed)
{
    const double horizon = 200.0;
    const auto plan = FaultPlan::randomChurn(50, 8, 4, horizon, 11);
    std::set<std::size_t> crashed;
    std::size_t crashes = 0, rejoins = 0;
    for (const auto &ev : plan.events()) {
        if (ev.kind == FaultKind::NodeCrash) {
            ++crashes;
            EXPECT_TRUE(crashed.insert(ev.node).second)
                << "node " << ev.node << " crashed twice";
            EXPECT_GE(ev.at, 0.0);
            EXPECT_LE(ev.at, 0.6 * horizon);
        } else {
            ASSERT_EQ(ev.kind, FaultKind::NodeRejoin);
            ++rejoins;
            EXPECT_EQ(crashed.count(ev.node), 1u)
                << "rejoin of a node that never crashed";
            EXPECT_GE(ev.at, 0.7 * horizon);
            EXPECT_LE(ev.at, horizon);
        }
    }
    EXPECT_EQ(crashes, 8u);
    EXPECT_EQ(rejoins, 4u);
}

TEST(FaultPlanTest, RandomChurnIsSeedDeterministic)
{
    const auto a = FaultPlan::randomChurn(40, 5, 3, 100.0, 7);
    const auto b = FaultPlan::randomChurn(40, 5, 3, 100.0, 7);
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].at, b.events()[i].at);
        EXPECT_EQ(a.events()[i].node, b.events()[i].node);
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    }
}

TEST(FaultSessionTest, AppliesDueEventsAndAdvancesClock)
{
    const auto prob = test::npbProblem(16, 170.0, 61);
    Rng topo_rng(3);
    DibaAllocator diba(makeChordalRing(16, 6, topo_rng));
    diba.reset(prob);
    FaultPlan plan;
    plan.crashAt(0.0, 4).crashAt(2.0, 7);
    FaultSession session(diba, plan);

    session.stepRound(); // t=0: first crash applies
    EXPECT_FALSE(diba.isActive(4));
    EXPECT_TRUE(diba.isActive(7));
    EXPECT_EQ(session.eventsApplied(), 1u);
    EXPECT_DOUBLE_EQ(session.now(), 1.0);

    session.stepRound(); // t=1: nothing due
    EXPECT_TRUE(diba.isActive(7));
    session.stepRound(); // t=2: second crash applies
    EXPECT_FALSE(diba.isActive(7));
    EXPECT_EQ(session.eventsApplied(), 2u);
    EXPECT_EQ(session.checker().roundsChecked(), 3u);
}

TEST(FaultSessionTest, SkipsInvalidEventsInsteadOfPanicking)
{
    const auto prob = test::npbProblem(16, 170.0, 62);
    Rng topo_rng(4);
    DibaAllocator diba(makeChordalRing(16, 6, topo_rng));
    diba.reset(prob);
    FaultPlan plan;
    plan.crashAt(0.0, 5)
        .crashAt(0.0, 5)     // double crash: skipped
        .rejoinAt(0.0, 6)    // rejoin of a live node: skipped
        .cutLinkAt(0.0, 0, 1)
        .cutLinkAt(0.0, 0, 1) // double cut: skipped
        .healLinkAt(0.0, 2, 3); // heal of an intact link: skipped
    FaultSession session(diba, plan);
    session.stepRound();
    EXPECT_EQ(session.eventsApplied(), 2u);
    EXPECT_EQ(session.eventsSkipped(), 4u);
    // Per-kind breakdown: one of each invalid flavor.
    EXPECT_EQ(session.eventsSkipped(FaultKind::NodeCrash), 1u);
    EXPECT_EQ(session.eventsSkipped(FaultKind::NodeRejoin), 1u);
    EXPECT_EQ(session.eventsSkipped(FaultKind::LinkCut), 1u);
    EXPECT_EQ(session.eventsSkipped(FaultKind::LinkHeal), 1u);
    EXPECT_EQ(session.eventsSkipped(FaultKind::MeterGlitch), 0u);
    EXPECT_FALSE(diba.isActive(5));
    EXPECT_FALSE(diba.edgeEnabled(0, 1));
}

TEST(FaultSessionTest, MeterGlitchIsAControlLoopConcern)
{
    const auto prob = test::npbProblem(8, 170.0, 63);
    DibaAllocator diba(makeRing(8));
    diba.reset(prob);
    FaultPlan plan;
    plan.meterGlitchAt(0.0, 2, 0.2, 10.0);
    FaultSession session(diba, plan);
    session.stepRound();
    // Nothing to do at the allocator level; the event is recorded
    // as skipped and the run continues.
    EXPECT_EQ(session.eventsApplied(), 0u);
    EXPECT_EQ(session.eventsSkipped(), 1u);
    EXPECT_EQ(session.eventsSkipped(FaultKind::MeterGlitch), 1u);
}

TEST(FaultSessionTest, RunReportsQuietRoundsOnceSettled)
{
    const auto prob = test::npbProblem(24, 170.0, 64);
    Rng topo_rng(5);
    DibaAllocator diba(makeChordalRing(24, 8, topo_rng));
    diba.reset(prob);
    const FaultPlan plan; // no faults, perfect-equivalent channel
    FaultSession session(diba, plan);
    const std::size_t quiet = session.run(3000);
    EXPECT_GT(quiet, 0u);
    EXPECT_EQ(session.checker().roundsChecked(), 3000u);
}

} // namespace
} // namespace dpc
