#include <gtest/gtest.h>

#include <set>

#include "alloc/centralized.hh"
#include "fault/recovery.hh"
#include "graph/topologies.hh"
#include "metrics/performance.hh"
#include "tests/alloc/test_problems.hh"

namespace dpc {
namespace {

TEST(GroundTruthChannelTest, WorldStateGatesTheInnerLossProcess)
{
    LossyChannel::Config cfg; // lossless inner channel
    GroundTruthChannel world(cfg, 1, 4);
    world.beginRound(4);
    EXPECT_TRUE(world.fate(0, 0, 1).delivered);

    ASSERT_TRUE(world.crashNode(1));
    EXPECT_FALSE(world.crashNode(1)); // no-op: already down
    EXPECT_FALSE(world.fate(0, 0, 1).delivered);
    EXPECT_TRUE(world.fate(1, 2, 3).delivered);
    EXPECT_EQ(world.numNodesUp(), 3u);

    ASSERT_TRUE(world.reviveNode(1));
    EXPECT_TRUE(world.fate(0, 0, 1).delivered);

    ASSERT_TRUE(world.cutLink(2, 3));
    EXPECT_FALSE(world.cutLink(3, 2)); // orientation-free no-op
    EXPECT_FALSE(world.fate(1, 2, 3).delivered);
    EXPECT_FALSE(world.linkUp(2, 3));
    ASSERT_TRUE(world.healLink(3, 2));
    EXPECT_TRUE(world.fate(1, 2, 3).delivered);

    EXPECT_EQ(world.worldDrops(), 2u);
    // World drops consumed no inner draw.
    EXPECT_EQ(world.inner().stats().dropped, 0u);
}

TEST(RecoverySessionTest, DetectorDrivenCrashAndRejoin)
{
    const std::size_t n = 16;
    const auto prob = test::npbProblem(n, 170.0, 71);
    Rng topo_rng(71);
    DibaAllocator diba(makeChordalRing(n, 6, topo_rng));
    diba.reset(prob);

    FaultPlan plan;
    plan.crashAt(10.0, 4).rejoinAt(80.0, 4);
    RecoverySession session(diba, plan);

    // Nothing is applied to the allocator at event time: the crash
    // mutates the world, and only the detector's verdict (a streak
    // of all-miss rounds) fails the node in the books.
    for (int r = 0; r < 11; ++r)
        session.stepRound();
    EXPECT_TRUE(diba.isActive(4)); // world-dead, not yet detected

    const std::size_t wait =
        session.detector().config().node_suspect_after + 2;
    for (std::size_t r = 0; r < wait; ++r)
        session.stepRound();
    EXPECT_FALSE(diba.isActive(4)); // verdict landed
    EXPECT_EQ(session.report().nodes_failed, 1u);
    EXPECT_EQ(session.report().false_positive_nodes, 0u);

    // After the world revival, the probes of the believed-dead
    // edges resume delivering and hysteresis re-admits the node.
    while (session.now() < 90.0)
        session.stepRound();
    EXPECT_TRUE(diba.isActive(4));
    EXPECT_EQ(session.report().nodes_rejoined, 1u);
    EXPECT_EQ(session.report().events_applied, 2u);
    EXPECT_EQ(session.report().events_skipped, 0u);
    // Every round was audited.
    EXPECT_EQ(session.checker().roundsChecked(),
              session.report().rounds);
}

TEST(RecoverySessionTest, PersistentPartitionRefederatesTheBudget)
{
    const std::size_t n = 12;
    const auto prob = test::npbProblem(n, 170.0, 72);
    DibaAllocator diba(makeRing(n));
    diba.reset(prob);

    FaultPlan plan;
    plan.cutLinkAt(5.0, 0, 1).cutLinkAt(5.0, 6, 7);
    plan.healLinkAt(150.0, 0, 1).healLinkAt(150.0, 6, 7);
    RecoverySession::Config cfg;
    cfg.enable_healing = false; // keep the partition open
    RecoverySession session(diba, plan, cfg);

    while (session.now() < 100.0)
        session.stepRound();
    // Both edges were administratively cut by the detector and the
    // budget was re-federated across the two arcs.
    EXPECT_EQ(session.report().links_cut, 2u);
    EXPECT_TRUE(diba.federationActive());
    ASSERT_EQ(diba.federationShares().size(), 2u);
    double share_sum = 0.0;
    for (double s : diba.federationShares())
        share_sum += s;
    EXPECT_LE(share_sum, diba.budget()); // safe-side, bitwise
    EXPECT_EQ(session.components().numComponents(), 2u);
    EXPECT_GE(session.report().refederations, 1u);

    // Healing the world links lets trust recover, the overlay
    // reconnects, and the federation dissolves.
    while (session.now() < 200.0)
        session.stepRound();
    EXPECT_EQ(session.report().links_healed, 2u);
    EXPECT_TRUE(session.components().connected());
    EXPECT_FALSE(diba.federationActive());
    EXPECT_EQ(session.checker().roundsChecked(),
              session.report().rounds);
}

TEST(RecoverySessionTest, HealerBridgesAPartitionWithSpares)
{
    const std::size_t n = 24;
    const auto prob = test::npbProblem(n, 170.0, 73);
    Rng topo_rng(73);
    std::vector<std::pair<std::size_t, std::size_t>> spares;
    Graph g = makeHealableRing(n, 0, 10, topo_rng, &spares);
    DibaAllocator diba(std::move(g));
    diba.reset(prob);

    // Sever the bare ring in two places: without spares the
    // believed overlay must fragment.
    FaultPlan plan;
    plan.cutLinkAt(5.0, 0, 1).cutLinkAt(5.0, 11, 12);
    RecoverySession::Config cfg;
    cfg.spare_edges = spares;
    RecoverySession session(diba, plan, cfg);

    while (session.now() < 120.0)
        session.stepRound();
    EXPECT_EQ(session.report().links_cut, 2u);
    EXPECT_GE(session.report().repairs, 1u);
    EXPECT_TRUE(session.components().connected());
    // The healed overlay keeps optimizing the whole budget: no
    // lingering federation once the spares bridged the split.
    EXPECT_FALSE(diba.federationActive());
    EXPECT_EQ(session.checker().roundsChecked(),
              session.report().rounds);
}

// S3: crash -> rejoin -> crash of the same node while the overlay
// is partitioned by administratively cut links.
TEST(RecoverySessionTest, ChurnSequenceUnderPartitionMasks)
{
    const std::size_t n = 8;
    const auto prob = test::npbProblem(n, 170.0, 74);
    DibaAllocator diba(makeRing(n));
    diba.reset(prob);

    // Arcs {4,5,6} and {7,0,1,2,3}: when node 1 churns, both of
    // its neighbors keep a second live edge, so the evidence for
    // "node 1 died" never bleeds into a neighbor verdict.
    FaultPlan plan;
    plan.cutLinkAt(0.0, 3, 4).cutLinkAt(0.0, 6, 7);
    plan.crashAt(40.0, 1).rejoinAt(90.0, 1).crashAt(140.0, 1);
    RecoverySession::Config cfg;
    cfg.enable_healing = false;
    RecoverySession session(diba, plan, cfg);

    while (session.now() < 70.0)
        session.stepRound();
    EXPECT_FALSE(diba.isActive(1));
    while (session.now() < 120.0)
        session.stepRound();
    EXPECT_TRUE(diba.isActive(1));
    while (session.now() < 200.0)
        session.stepRound();
    EXPECT_FALSE(diba.isActive(1));
    EXPECT_EQ(session.report().nodes_failed, 2u);
    EXPECT_EQ(session.report().nodes_rejoined, 1u);
    EXPECT_EQ(session.report().links_cut, 2u);
    // The partition was live the whole time, so every churn event
    // was absorbed under an active federation.
    EXPECT_TRUE(diba.federationActive());
    EXPECT_EQ(session.checker().roundsChecked(),
              session.report().rounds);
}

// S3: a revived node whose every overlay edge is world-cut gathers
// no delivery evidence, so it must stay out of the books until a
// link comes back.
TEST(RecoverySessionTest, RejoinRequiresALiveLink)
{
    const std::size_t n = 8;
    const auto prob = test::npbProblem(n, 170.0, 75);
    DibaAllocator diba(makeRing(n));
    diba.reset(prob);

    FaultPlan plan;
    plan.crashAt(10.0, 3)
        .cutLinkAt(12.0, 2, 3)
        .cutLinkAt(12.0, 3, 4)
        .rejoinAt(60.0, 3)
        .healLinkAt(120.0, 2, 3);
    RecoverySession session(diba, plan);

    while (session.now() < 120.0)
        session.stepRound();
    // World-revived at t=60, but both incident links are cut: the
    // probes keep dropping, so the node stays believed-dead.
    EXPECT_TRUE(session.world().nodeUp(3));
    EXPECT_FALSE(diba.isActive(3));

    while (session.now() < 160.0)
        session.stepRound();
    // One healed link is enough evidence to re-admit it.
    EXPECT_TRUE(diba.isActive(3));
    EXPECT_GE(session.report().nodes_rejoined, 1u);
    EXPECT_EQ(session.checker().roundsChecked(),
              session.report().rounds);
}

// The acceptance storm: a big healable overlay under i.i.d. loss,
// Gilbert-Elliott bursts, random delays, random churn and link
// cuts -- driven end to end with zero omniscient calls.  The
// invariants are audited every round (the watchdog never leaves the
// cluster over budget), the healer keeps the believed overlay
// connected, and the final allocation lands within 5% of the
// centralized oracle over the surviving nodes.
TEST(RecoverySessionTest, AcceptanceStormHealsAndReconverges)
{
    const std::size_t n = 1024;
    const double horizon = 600.0;
    const auto prob = test::npbProblem(n, 170.0, 76);

    auto run_once = [&](RecoveryReport *rep_out,
                        std::size_t *comps_out) {
        Rng topo_rng(76);
        std::vector<std::pair<std::size_t, std::size_t>> spares;
        Graph g = makeHealableRing(n, 256, 64, topo_rng, &spares);
        DibaAllocator diba(std::move(g));
        diba.reset(prob);

        FaultPlan plan =
            FaultPlan::randomChurn(n, 6, 3, horizon, 77);
        // Two permanent link failures on top of the churn: the
        // detector must cut them administratively (or, if they
        // strand a chordless node, evict it as a node verdict).
        plan.cutLinkAt(50.0, 10, 11).cutLinkAt(50.0, 11, 12);
        LossyChannel::Config loss;
        loss.drop_rate = 0.12;
        loss.burst_enter = 0.01;
        loss.burst_exit = 0.25;
        loss.burst_drop = 0.85;
        loss.delay_rate = 0.08;
        loss.max_lag = 2;
        plan.loss(loss);
        plan.seed(78);

        RecoverySession::Config cfg;
        cfg.detector.node_suspect_after = 8;
        cfg.detector.edge_suspect_after = 20;
        cfg.spare_edges = spares;
        RecoverySession session(diba, plan, cfg);

        // Run through the full fault horizon plus a recovery tail
        // long enough for strict fixed-point convergence under the
        // never-ending 12% message loss.
        while (session.now() < horizon + 1400.0)
            session.stepRound();

        // Hard guarantees first: every round audited, never over
        // budget (the checker enforces sum p < P and per-component
        // shares on every round; reaching here means it held).
        EXPECT_EQ(session.checker().roundsChecked(),
                  session.report().rounds);
        EXPECT_LT(diba.totalPower(), diba.budget());

        // The believed overlay is connected again among live nodes.
        EXPECT_TRUE(session.components().connected());

        // Crashed-and-never-revived nodes (plus the isolated one)
        // were evicted by the detector, not by any oracle call.
        std::set<std::size_t> dead;
        for (const auto &ev : plan.events())
            if (ev.kind == FaultKind::NodeCrash)
                dead.insert(ev.node);
        for (const auto &ev : plan.events())
            if (ev.kind == FaultKind::NodeRejoin)
                dead.erase(ev.node);
        for (std::size_t v : dead)
            EXPECT_FALSE(diba.isActive(v)) << "node " << v;
        EXPECT_GE(session.report().nodes_failed, dead.size());
        EXPECT_GE(session.report().nodes_rejoined, 3u);

        // Allocation quality: within 5% of the centralized oracle
        // over the surviving nodes.
        AllocationProblem sub;
        sub.budget = prob.budget;
        std::vector<double> live_power;
        for (std::size_t i = 0; i < n; ++i) {
            if (!diba.isActive(i))
                continue;
            sub.utilities.push_back(prob.utilities[i]);
            live_power.push_back(diba.power()[i]);
        }
        const auto oracle = CentralizedAllocator().allocate(sub);
        const double got = totalUtility(sub.utilities, live_power);
        const double best =
            totalUtility(sub.utilities, oracle.power);
        EXPECT_GE(got, 0.95 * best);

        if (rep_out != nullptr)
            *rep_out = session.report();
        if (comps_out != nullptr)
            *comps_out = session.components().numComponents();
        return diba.power();
    };

    RecoveryReport rep{};
    std::size_t comps = 0;
    const auto power_a = run_once(&rep, &comps);
    EXPECT_GT(rep.rounds_to_recover, 0u);
    EXPECT_EQ(rep.events_skipped, 0u);
    EXPECT_EQ(comps, 1u);

    // Bitwise determinism: the identical storm replays the
    // identical trajectory.
    const auto power_b = run_once(nullptr, nullptr);
    ASSERT_EQ(power_a.size(), power_b.size());
    for (std::size_t i = 0; i < power_a.size(); ++i)
        EXPECT_EQ(power_a[i], power_b[i]) << "node " << i;
}

// The false-positive escape hatch: under brutal loss an aggressive
// detector will fail a perfectly healthy node; the probes keep
// watching its edges, hysteresis clears the verdict, and the node
// is re-admitted -- ending within tolerance of a fault-free run.
TEST(RecoverySessionTest, FalsePositiveVerdictsHealViaHysteresis)
{
    const std::size_t n = 8;
    const auto prob = test::npbProblem(n, 170.0, 79);

    auto run = [&](bool bursts, RecoveryReport *rep) {
        DibaAllocator diba(makeRing(n));
        diba.reset(prob);
        FaultPlan plan; // no discrete faults at all
        LossyChannel::Config loss;
        if (bursts) {
            // Rare, short, total blackouts: when both edges of a
            // node black out together, the hair-trigger detector
            // misfires on a perfectly healthy node.
            loss.drop_rate = 0.05;
            loss.burst_enter = 0.02;
            loss.burst_exit = 0.3;
            loss.burst_drop = 1.0;
        }
        plan.loss(loss);
        plan.seed(80);
        RecoverySession::Config cfg;
        cfg.detector.node_suspect_after = 2; // hair trigger
        cfg.detector.edge_suspect_after = 10;
        cfg.detector.trust_after = 2;
        RecoverySession session(diba, plan, cfg);
        std::size_t rounds = 400;
        while (rounds-- > 0)
            session.stepRound();
        // Measure only once every misfire has healed and the
        // allocation had a full-membership window to settle.
        std::size_t settle = 0, guard = 4000;
        while (settle < 60 && guard-- > 0) {
            session.stepRound();
            settle = diba.numActive() == n ? settle + 1 : 0;
        }
        EXPECT_EQ(diba.numActive(), n);
        if (rep != nullptr)
            *rep = session.report();
        return totalUtility(prob.utilities, diba.power());
    };

    RecoveryReport rep{};
    const double lossy_util = run(true, &rep);
    // The hair-trigger detector misfired at least once, and every
    // misfire was healed by the hysteresis path.
    EXPECT_GE(rep.false_positive_nodes, 1u);
    EXPECT_EQ(rep.nodes_rejoined, rep.nodes_failed);

    const double clean_util = run(false, nullptr);
    EXPECT_GE(lossy_util, 0.95 * clean_util);
}

} // namespace
} // namespace dpc
