#include <gtest/gtest.h>

#include <limits>

#include "fault/lossy_channel.hh"

namespace dpc {
namespace {

TEST(LossyChannelTest, PerfectChannelDeliversEverythingFresh)
{
    PerfectChannel chan;
    chan.beginRound(100);
    for (std::size_t e = 0; e < 100; ++e) {
        const auto f = chan.fate(e, e, e + 1);
        EXPECT_TRUE(f.delivered);
        EXPECT_EQ(f.lag, 0u);
    }
    EXPECT_EQ(chan.maxLag(), 0u);
}

TEST(LossyChannelTest, IidLossRateMatchesConfig)
{
    LossyChannel::Config cfg;
    cfg.drop_rate = 0.25;
    LossyChannel chan(cfg, 1);
    const std::size_t rounds = 200, edges = 100;
    for (std::size_t r = 0; r < rounds; ++r) {
        chan.beginRound(edges);
        for (std::size_t e = 0; e < edges; ++e)
            chan.fate(e, e, e + 1);
    }
    EXPECT_EQ(chan.stats().offered, rounds * edges);
    EXPECT_NEAR(chan.lossRate(), 0.25, 0.02);
    EXPECT_EQ(chan.stats().stale, 0u);
}

TEST(LossyChannelTest, SameSeedReproducesFateSequence)
{
    LossyChannel::Config cfg;
    cfg.drop_rate = 0.3;
    cfg.delay_rate = 0.2;
    cfg.max_lag = 3;
    LossyChannel a(cfg, 99), b(cfg, 99);
    for (std::size_t r = 0; r < 50; ++r) {
        a.beginRound(40);
        b.beginRound(40);
        for (std::size_t e = 0; e < 40; ++e) {
            const auto fa = a.fate(e, e, e + 1);
            const auto fb = b.fate(e, e, e + 1);
            EXPECT_EQ(fa.delivered, fb.delivered);
            EXPECT_EQ(fa.lag, fb.lag);
        }
    }
    EXPECT_EQ(a.stats().dropped, b.stats().dropped);
    EXPECT_EQ(a.stats().stale, b.stats().stale);
}

TEST(LossyChannelTest, DelayLagsStayWithinBound)
{
    LossyChannel::Config cfg;
    cfg.delay_rate = 0.5;
    cfg.max_lag = 4;
    LossyChannel chan(cfg, 7);
    bool saw_stale = false;
    for (std::size_t r = 0; r < 100; ++r) {
        chan.beginRound(20);
        for (std::size_t e = 0; e < 20; ++e) {
            const auto f = chan.fate(e, e, e + 1);
            EXPECT_TRUE(f.delivered);
            EXPECT_LE(f.lag, 4u);
            saw_stale |= f.lag > 0;
        }
    }
    EXPECT_TRUE(saw_stale);
    EXPECT_GT(chan.stats().stale, 0u);
    EXPECT_EQ(chan.stats().dropped, 0u);
}

TEST(LossyChannelTest, BurstChainRaisesLossAboveGoodState)
{
    // Pure burst loss: drops only happen inside bad-state windows,
    // whose stationary frequency is enter/(enter+exit) = 0.2.
    LossyChannel::Config cfg;
    cfg.drop_rate = 0.0;
    cfg.burst_enter = 0.05;
    cfg.burst_exit = 0.2;
    cfg.burst_drop = 1.0;
    LossyChannel chan(cfg, 3);
    for (std::size_t r = 0; r < 20000; ++r) {
        chan.beginRound(1);
        chan.fate(0, 0, 1);
    }
    EXPECT_GT(chan.lossRate(), 0.12);
    EXPECT_LT(chan.lossRate(), 0.30);
}

TEST(LossyChannelTest, ConfigValidationPanics)
{
    LossyChannel::Config bad_drop;
    bad_drop.drop_rate = 1.0;
    EXPECT_DEATH(LossyChannel(bad_drop, 1), "drop_rate");

    LossyChannel::Config bad_delay;
    bad_delay.delay_rate = 0.5; // max_lag left at 0
    EXPECT_DEATH(LossyChannel(bad_delay, 1), "max_lag");
}

TEST(LossyChannelTest, ConfigValidationRejectsNegativesAndNaN)
{
    LossyChannel::Config neg_drop;
    neg_drop.drop_rate = -0.1;
    EXPECT_DEATH(LossyChannel(neg_drop, 1), "drop_rate");

    LossyChannel::Config neg_delay;
    neg_delay.delay_rate = -0.2;
    neg_delay.max_lag = 2;
    EXPECT_DEATH(LossyChannel(neg_delay, 1), "delay_rate");

    LossyChannel::Config dead_burst;
    dead_burst.burst_enter = 0.1;
    dead_burst.burst_exit = 0.0; // bursts would never end
    EXPECT_DEATH(LossyChannel(dead_burst, 1), "burst_exit");

    // NaN compares false against every bound; it must still be
    // rejected, with the offending field named.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    LossyChannel::Config nan_drop;
    nan_drop.drop_rate = nan;
    EXPECT_DEATH(LossyChannel(nan_drop, 1), "drop_rate");
    LossyChannel::Config nan_enter;
    nan_enter.burst_enter = nan;
    EXPECT_DEATH(LossyChannel(nan_enter, 1), "burst_enter");
    LossyChannel::Config nan_delay;
    nan_delay.delay_rate = nan;
    nan_delay.max_lag = 1;
    EXPECT_DEATH(LossyChannel(nan_delay, 1), "delay_rate");
}

TEST(LossyChannelTest, ConfigValidationBoundsMaxLag)
{
    LossyChannel::Config huge_lag;
    huge_lag.delay_rate = 0.1;
    huge_lag.max_lag = LossyChannel::kMaxLagLimit + 1;
    EXPECT_DEATH(LossyChannel(huge_lag, 1), "max_lag");

    // The limit itself is accepted.
    LossyChannel::Config at_limit;
    at_limit.delay_rate = 0.1;
    at_limit.max_lag = LossyChannel::kMaxLagLimit;
    LossyChannel ok(at_limit, 1);
    EXPECT_EQ(ok.maxLag(), LossyChannel::kMaxLagLimit);
}

TEST(LossyChannelTest, EdgeMaskSkipsDrawsForMaskedEdges)
{
    // Regression: a standalone driver iterating EVERY overlay edge
    // (no allocator live-set filter in front) used to let masked
    // pairs consume drop/burst/delay draws, shifting every
    // subsequent edge's fate relative to the filtered reference.
    // With setEdgeMask installed, masked pairs are refused without
    // touching the generator, so the live-edge fate sequence is
    // identical to querying live edges only.
    LossyChannel::Config cfg;
    cfg.drop_rate = 0.3;
    cfg.burst_enter = 0.1;
    cfg.delay_rate = 0.2;
    cfg.max_lag = 3;

    const std::size_t edges = 60;
    std::vector<std::uint8_t> live(edges, 1);
    for (std::size_t e = 0; e < edges; e += 7)
        live[e] = 0; // every 7th edge is dead

    // Reference: a twin channel queried over live edges only.
    LossyChannel masked(cfg, 42), reference(cfg, 42);
    masked.setEdgeMask(&live);

    for (std::size_t r = 0; r < 100; ++r) {
        masked.beginRound(edges);
        reference.beginRound(edges);
        for (std::size_t e = 0; e < edges; ++e) {
            const auto f = masked.fate(e, e, e + 1);
            if (live[e] == 0) {
                // Masked: dropped, and no draw consumed.
                EXPECT_FALSE(f.delivered);
                EXPECT_EQ(f.lag, 0u);
                continue;
            }
            const auto ref = reference.fate(e, e, e + 1);
            EXPECT_EQ(f.delivered, ref.delivered)
                << "round " << r << " edge " << e;
            EXPECT_EQ(f.lag, ref.lag)
                << "round " << r << " edge " << e;
        }
    }
    EXPECT_EQ(masked.stats().masked, 100u * 9u);
    EXPECT_EQ(masked.stats().offered, reference.stats().offered);
    EXPECT_EQ(masked.stats().dropped, reference.stats().dropped);
    EXPECT_EQ(masked.stats().stale, reference.stats().stale);
}

TEST(LossyChannelTest, EdgeMaskOutOfRangeIdsAreMasked)
{
    // Ids beyond the mask are treated as dead (a shrunk overlay
    // must not let stray ids consume draws either).
    LossyChannel::Config cfg;
    cfg.drop_rate = 0.5;
    std::vector<std::uint8_t> live(4, 1);
    LossyChannel chan(cfg, 9);
    chan.setEdgeMask(&live);
    chan.beginRound(8);
    EXPECT_FALSE(chan.fate(7, 7, 8).delivered);
    EXPECT_EQ(chan.stats().masked, 1u);
    EXPECT_EQ(chan.stats().offered, 0u);

    // Clearing the mask restores unfiltered behavior.
    chan.setEdgeMask(nullptr);
    chan.fate(7, 7, 8);
    EXPECT_EQ(chan.stats().offered, 1u);
}

} // namespace
} // namespace dpc
