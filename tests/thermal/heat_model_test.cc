#include <gtest/gtest.h>

#include "thermal/heat_model.hh"

namespace dpc {
namespace {

HeatModel
smallModel(double coupling = 0.2)
{
    // Two racks with symmetric cross-interference.
    Matrix d(2, 2);
    d(0, 1) = coupling;
    d(1, 0) = coupling;
    return HeatModel(d, {500.0, 500.0}, 24.0);
}

TEST(HeatModelTest, InfluenceMatchesClosedForm)
{
    // For the symmetric 2-rack case, (I - D^T)^{-1} has diagonal
    // 1/(1-c^2) and off-diagonal c/(1-c^2).
    const double c = 0.2;
    const auto m = smallModel(c);
    const auto &f = m.influence();
    const double denom = 1.0 - c * c;
    EXPECT_NEAR(f(0, 0), (1.0 / denom - 1.0) / 500.0, 1e-12);
    EXPECT_NEAR(f(0, 1), (c / denom) / 500.0, 1e-12);
}

TEST(HeatModelTest, InletRiseLinearInPower)
{
    const auto m = smallModel();
    const auto r1 = m.inletRise({1000.0, 1000.0});
    const auto r2 = m.inletRise({2000.0, 2000.0});
    EXPECT_NEAR(r2[0], 2.0 * r1[0], 1e-9);
    EXPECT_NEAR(r2[1], 2.0 * r1[1], 1e-9);
}

TEST(HeatModelTest, InletTempsAddSupply)
{
    const auto m = smallModel();
    const auto rise = m.inletRise({1000.0, 500.0});
    const auto temp = m.inletTemps({1000.0, 500.0}, 15.0);
    EXPECT_NEAR(temp[0], rise[0] + 15.0, 1e-12);
    EXPECT_NEAR(temp[1], rise[1] + 15.0, 1e-12);
}

TEST(HeatModelTest, MaxSupplyTempHitsRedlineExactly)
{
    const auto m = smallModel();
    const std::vector<double> p{3000.0, 1000.0};
    const double t_sup = m.maxSupplyTemp(p);
    const auto temps = m.inletTemps(p, t_sup);
    double worst = temps[0];
    for (double t : temps)
        worst = std::max(worst, t);
    EXPECT_NEAR(worst, 24.0, 1e-9);
}

TEST(HeatModelTest, HotterNeighborRaisesInlet)
{
    const auto m = smallModel();
    const auto base = m.inletRise({1000.0, 1000.0});
    const auto hot = m.inletRise({1000.0, 3000.0});
    EXPECT_GT(hot[0], base[0]);
}

TEST(HeatModelTest, RejectsBadInputs)
{
    Matrix d(2, 2);
    d(0, 0) = 0.1; // non-zero diagonal
    EXPECT_DEATH(HeatModel(d, {500.0, 500.0}, 24.0), "diagonal");
    Matrix ok(2, 2);
    EXPECT_DEATH(HeatModel(ok, {500.0, -1.0}, 24.0), "K coeff");
    EXPECT_DEATH(HeatModel(ok, {500.0}, 24.0), "racks x racks");
}

TEST(SyntheticRecirculationTest, WellFormed)
{
    Rng rng(1);
    const auto d = makeSyntheticRecirculation(8, 10, 0.25, rng);
    ASSERT_EQ(d.rows(), 80u);
    double worst = 0.0;
    for (std::size_t i = 0; i < 80; ++i) {
        EXPECT_EQ(d(i, i), 0.0);
        double row = 0.0, col = 0.0;
        for (std::size_t j = 0; j < 80; ++j) {
            EXPECT_GE(d(i, j), 0.0);
            row += d(i, j);
            col += d(j, i);
        }
        EXPECT_LE(row, 0.25 + 1e-9);
        EXPECT_LE(col, 0.25 + 1e-9);
        worst = std::max({worst, row, col});
    }
    EXPECT_NEAR(worst, 0.25, 1e-9);
}

TEST(SyntheticRecirculationTest, NearbyRacksCoupleMore)
{
    Rng rng(2);
    const auto d = makeSyntheticRecirculation(8, 10, 0.25, rng);
    // Rack 34 (row 3, slot 4): its neighbour in the same row (35)
    // couples more strongly than a rack four rows away (74).
    EXPECT_GT(d(34, 35), d(34, 74));
}

TEST(SyntheticRecirculationTest, UsableByHeatModel)
{
    Rng rng(3);
    const auto d = makeSyntheticRecirculation(4, 5, 0.25, rng);
    HeatModel m(d, std::vector<double>(20, 500.0), 24.0);
    const auto rise =
        m.inletRise(std::vector<double>(20, 5000.0));
    for (double r : rise) {
        EXPECT_GT(r, 0.0);
        EXPECT_LT(r, 20.0);
    }
}

} // namespace
} // namespace dpc
