#include <gtest/gtest.h>

#include "thermal/total_budgeter.hh"
#include "util/stats.hh"

namespace dpc {
namespace {

class BudgeterFixture : public ::testing::Test
{
  protected:
    BudgeterFixture()
        : rng_(11),
          d_(makeSyntheticRecirculation(8, 10, 0.25, rng_)),
          heat_(d_, std::vector<double>(80, 500.0), 24.0),
          cooling_(heat_, CopModel(), coolingConfig()),
          budgeter_(cooling_)
    {
    }

    static CoolingModel::Config
    coolingConfig()
    {
        CoolingModel::Config cfg;
        cfg.rated_power_w = 528000.0; // 3200 servers at 165 W
        return cfg;
    }

    /** Uniform rack allocation of a computing budget. */
    static std::vector<double>
    uniformRacks(double b_s)
    {
        return std::vector<double>(80, b_s / 80.0);
    }

    Rng rng_;
    Matrix d_;
    HeatModel heat_;
    CoolingModel cooling_;
    TotalPowerBudgeter budgeter_;
};

TEST_F(BudgeterFixture, ConvergesAndClosesBudget)
{
    const double total = 600000.0;
    const auto res = budgeter_.partition(total, uniformRacks);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.b_s + res.b_crac, total, 11.0);
    EXPECT_GT(res.b_s, 0.0);
    EXPECT_GT(res.b_crac, 0.0);
}

TEST_F(BudgeterFixture, SelfConsistent)
{
    const auto res = budgeter_.partition(660000.0, uniformRacks);
    // The reported cooling power actually suffices for the
    // reported computing power.
    const double need =
        cooling_.coolingPower(uniformRacks(res.b_s));
    EXPECT_NEAR(res.b_crac, need, 1.0);
}

TEST_F(BudgeterFixture, CoolingShareInPaperBand)
{
    // Fig. 3.10: cooling is roughly 30-38% of the total budget.
    for (double total : {600000.0, 660000.0, 720000.0}) {
        const auto res = budgeter_.partition(total, uniformRacks);
        const double share = res.b_crac / total;
        EXPECT_GT(share, 0.25) << total;
        EXPECT_LT(share, 0.42) << total;
    }
}

TEST_F(BudgeterFixture, CoolingShareIncreasesWithBudget)
{
    const auto lo = budgeter_.partition(600000.0, uniformRacks);
    const auto hi = budgeter_.partition(720000.0, uniformRacks);
    EXPECT_GT(hi.b_crac / 720000.0, lo.b_crac / 600000.0);
}

TEST_F(BudgeterFixture, TraceContracts)
{
    // Fig. 3.4: the distance to the fixed point shrinks over
    // iterations.
    const auto res = budgeter_.partition(700000.0, uniformRacks);
    ASSERT_GE(res.trace.size(), 2u);
    const double b_star = res.b_s;
    double prev = std::fabs(res.trace.front().b_s - b_star);
    for (std::size_t k = 1; k + 1 < res.trace.size(); ++k) {
        const double cur = std::fabs(res.trace[k].b_s - b_star);
        EXPECT_LT(cur, prev + 1e-9) << "iteration " << k;
        prev = cur;
    }
}

TEST_F(BudgeterFixture, RelaxationStillConverges)
{
    TotalPowerBudgeter::Config cfg;
    cfg.relaxation = 0.5;
    TotalPowerBudgeter damped(cooling_, cfg);
    const auto res = damped.partition(660000.0, uniformRacks);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.b_s + res.b_crac, 660000.0, cfg.tolerance_w + 1);
}

TEST_F(BudgeterFixture, RejectsBadConfig)
{
    TotalPowerBudgeter::Config cfg;
    cfg.relaxation = 0.0;
    EXPECT_DEATH(TotalPowerBudgeter bad(cooling_, cfg),
                 "relaxation");
    EXPECT_DEATH(budgeter_.partition(-1.0, uniformRacks),
                 "budget");
}

} // namespace
} // namespace dpc
