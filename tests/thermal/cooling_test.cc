#include <gtest/gtest.h>

#include "thermal/cooling.hh"

namespace dpc {
namespace {

TEST(CopModelTest, MatchesEquation32)
{
    CopModel cop;
    // CoP(15) = 0.0068 * 225 + 0.0008 * 15 + 0.458.
    EXPECT_NEAR(cop.cop(15.0), 1.53 + 0.012 + 0.458, 1e-12);
}

TEST(CopModelTest, HigherSupplyTempIsMoreEfficient)
{
    CopModel cop;
    EXPECT_GT(cop.cop(20.0), cop.cop(10.0));
}

class CoolingFixture : public ::testing::Test
{
  protected:
    CoolingFixture()
        : rng_(5),
          d_(makeSyntheticRecirculation(4, 5, 0.25, rng_)),
          heat_(d_, std::vector<double>(20, 500.0), 24.0),
          cooling_(heat_, CopModel())
    {
    }

    Rng rng_;
    Matrix d_;
    HeatModel heat_;
    CoolingModel cooling_;
};

TEST_F(CoolingFixture, SupplyTempDropsWithLoad)
{
    const std::vector<double> lo(20, 2000.0);
    const std::vector<double> hi(20, 6000.0);
    EXPECT_GT(cooling_.supplyTemp(lo), cooling_.supplyTemp(hi));
}

TEST_F(CoolingFixture, CoolingPowerSuperLinearInLoad)
{
    const std::vector<double> lo(20, 2000.0);
    const std::vector<double> hi(20, 4000.0);
    const double c_lo = cooling_.coolingPower(lo);
    const double c_hi = cooling_.coolingPower(hi);
    // Doubling the load more than doubles cooling (lower supply
    // temperature, lower CoP, airflow margin).
    EXPECT_GT(c_hi, 2.0 * c_lo);
}

TEST_F(CoolingFixture, CoolingShareGrowsWithLoad)
{
    const std::vector<double> lo(20, 2500.0);
    const std::vector<double> hi(20, 5500.0);
    const double share_lo =
        cooling_.coolingPower(lo) / (20 * 2500.0);
    const double share_hi =
        cooling_.coolingPower(hi) / (20 * 5500.0);
    EXPECT_GT(share_hi, share_lo);
}

TEST_F(CoolingFixture, ZeroLoadZeroCooling)
{
    EXPECT_DOUBLE_EQ(
        cooling_.coolingPower(std::vector<double>(20, 0.0)), 0.0);
}

TEST_F(CoolingFixture, ConcentratedLoadCoolsWorseThanSpread)
{
    // Same total power: all in one hot rack vs spread evenly.
    std::vector<double> spread(20, 3000.0);
    std::vector<double> concentrated(20, 1000.0);
    concentrated[7] = 3000.0 * 20.0 - 1000.0 * 19.0;
    EXPECT_GT(cooling_.coolingPower(concentrated),
              cooling_.coolingPower(spread));
}

TEST_F(CoolingFixture, InfeasibleLoadIsFatal)
{
    // Absurd load drives the required supply temp below the CRAC
    // minimum.
    EXPECT_DEATH(
        cooling_.supplyTemp(std::vector<double>(20, 2.0e6)),
        "infeasible");
}

} // namespace
} // namespace dpc
