#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "net/wire.hh"

namespace dpc {
namespace net {
namespace {

bool
sameBits(double a, double b)
{
    std::uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    return ab == bb;
}

Frame
roundTrip(const Frame &in)
{
    std::vector<std::uint8_t> buf;
    encodeFrame(in, buf);
    Frame out;
    std::size_t consumed = 0;
    EXPECT_EQ(decodeFrame(buf.data(), buf.size(), out, consumed),
              DecodeStatus::Ok);
    EXPECT_EQ(consumed, buf.size());
    return out;
}

TEST(WireCodecTest, PairTransferRoundTripsAllFates)
{
    // Exhaustive over the fate space the transports produce:
    // delivered x lag 0..maxLag x every update-flag combination.
    constexpr std::uint32_t kMaxLag = 7;
    for (int delivered = 0; delivered <= 1; ++delivered) {
        for (std::uint32_t lag = 0; lag <= kMaxLag; ++lag) {
            for (int flags = 0; flags < 4; ++flags) {
                Frame in;
                in.type = FrameType::PairTransfer;
                in.pair_transfer.pair = EdgePair{
                    /*edge_id=*/lag * 131u + 7u,
                    /*u=*/3u,
                    /*v=*/11u,
                    /*round=*/0x0123456789abcdefULL,
                    /*e_u=*/1.25 * lag - 0.5,
                    /*e_v=*/-(1.25 * lag - 0.5),
                };
                in.pair_transfer.fate.delivered = delivered != 0;
                in.pair_transfer.fate.lag = lag;
                in.pair_transfer.update_u = (flags & 1) != 0;
                in.pair_transfer.update_v = (flags & 2) != 0;

                const Frame out = roundTrip(in);
                ASSERT_EQ(out.type, FrameType::PairTransfer);
                const auto &p = out.pair_transfer;
                EXPECT_EQ(p.pair.edge_id,
                          in.pair_transfer.pair.edge_id);
                EXPECT_EQ(p.pair.u, 3u);
                EXPECT_EQ(p.pair.v, 11u);
                EXPECT_EQ(p.pair.round, 0x0123456789abcdefULL);
                EXPECT_TRUE(sameBits(p.pair.e_u,
                                     in.pair_transfer.pair.e_u));
                EXPECT_TRUE(sameBits(p.pair.e_v,
                                     in.pair_transfer.pair.e_v));
                EXPECT_EQ(p.fate.delivered, delivered != 0);
                EXPECT_EQ(p.fate.lag, lag);
                EXPECT_EQ(p.update_u, (flags & 1) != 0);
                EXPECT_EQ(p.update_v, (flags & 2) != 0);
            }
        }
    }
}

TEST(WireCodecTest, DoublesTravelAsExactBitPatterns)
{
    const double cases[] = {
        0.0,
        -0.0,
        1.0 / 3.0,
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::denorm_min(),
        -std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        std::nextafter(170.0, 0.0),
    };
    for (const double x : cases) {
        Frame in;
        in.type = FrameType::PairTransfer;
        in.pair_transfer.pair.e_u = x;
        in.pair_transfer.pair.e_v = -x;
        const Frame out = roundTrip(in);
        EXPECT_TRUE(sameBits(out.pair_transfer.pair.e_u, x));
        EXPECT_TRUE(sameBits(out.pair_transfer.pair.e_v, -x));
    }
}

TEST(WireCodecTest, ControlFramesRoundTrip)
{
    {
        Frame in;
        in.type = FrameType::Hello;
        in.hello = HelloMsg{/*shard_id=*/3, /*version=*/kWireVersion,
                            /*udp_port=*/40123, /*tcp_port=*/40124};
        const Frame out = roundTrip(in);
        ASSERT_EQ(out.type, FrameType::Hello);
        EXPECT_EQ(out.hello.shard_id, 3u);
        EXPECT_EQ(out.hello.udp_port, 40123);
        EXPECT_EQ(out.hello.tcp_port, 40124);
    }
    {
        Frame in;
        in.type = FrameType::Welcome;
        in.welcome.agreed_version = kWireVersion;
        in.welcome.num_shards = 4;
        in.welcome.rounds = 60;
        in.welcome.udp_ports = {1000, 1001, 1002, 1003};
        in.welcome.tcp_ports = {2000, 2001, 2002, 2003};
        const Frame out = roundTrip(in);
        ASSERT_EQ(out.type, FrameType::Welcome);
        EXPECT_EQ(out.welcome.num_shards, 4u);
        EXPECT_EQ(out.welcome.rounds, 60u);
        EXPECT_EQ(out.welcome.udp_ports, in.welcome.udp_ports);
        EXPECT_EQ(out.welcome.tcp_ports, in.welcome.tcp_ports);
    }
    {
        Frame in;
        in.type = FrameType::RoundDone;
        in.round_done =
            RoundDoneMsg{/*shard_id=*/1, /*round=*/42,
                         /*local_max_dp=*/0.001953125};
        const Frame out = roundTrip(in);
        ASSERT_EQ(out.type, FrameType::RoundDone);
        EXPECT_EQ(out.round_done.round, 42u);
        EXPECT_TRUE(
            sameBits(out.round_done.local_max_dp, 0.001953125));
    }
    {
        Frame in;
        in.type = FrameType::RoundGo;
        in.round_go = RoundGoMsg{/*round=*/42,
                                 /*global_max_dp=*/0.5,
                                 /*stop=*/1};
        const Frame out = roundTrip(in);
        ASSERT_EQ(out.type, FrameType::RoundGo);
        EXPECT_EQ(out.round_go.stop, 1);
        EXPECT_TRUE(sameBits(out.round_go.global_max_dp, 0.5));
    }
    {
        Frame in;
        in.type = FrameType::Result;
        in.result.shard_id = 2;
        in.result.bytes_sent = 1 << 20;
        in.result.frames_sent = 999;
        in.result.retransmits = 3;
        in.result.node_ids = {5, 9, 13};
        in.result.power = {160.0, 170.5, -0.0};
        in.result.estimate = {1e-12, -1e-12, 0.0};
        const Frame out = roundTrip(in);
        ASSERT_EQ(out.type, FrameType::Result);
        EXPECT_EQ(out.result.node_ids, in.result.node_ids);
        ASSERT_EQ(out.result.power.size(), 3u);
        for (std::size_t i = 0; i < 3; ++i) {
            EXPECT_TRUE(
                sameBits(out.result.power[i], in.result.power[i]));
            EXPECT_TRUE(sameBits(out.result.estimate[i],
                                 in.result.estimate[i]));
        }
    }
}

TEST(WireCodecTest, CutBatchRoundTripsExactly)
{
    // Pinned to the v3 body layout: the unchanged bitmap and raw
    // 12-byte records exist only there (v4 suppresses / XOR-codes
    // them and is exercised by the CutBatchV4* tests below).
    Frame in;
    in.version = 3;
    in.type = FrameType::CutBatch;
    in.cut_batch.sender = 3;
    in.cut_batch.round = 0xfedcba9876543210ULL;
    in.cut_batch.seq = 7;
    in.cut_batch.reports = {
        DpReport{/*round=*/41, /*shard_mask=*/0b1011,
                 /*max_dp=*/0.001953125},
        DpReport{/*round=*/42, /*shard_mask=*/0b0001,
                 /*max_dp=*/-0.0},
    };
    std::uint64_t nan_bits;
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::memcpy(&nan_bits, &nan, sizeof(nan_bits));
    in.cut_batch.changed = {
        {0u, 0x3ff0000000000001ULL},
        {17u, nan_bits},
        {0xffffffu, 0x8000000000000000ULL}, // -0.0
    };
    in.cut_batch.unchanged = {0xdeadbeefcafef00dULL, 0x1ULL};

    const Frame out = roundTrip(in);
    ASSERT_EQ(out.type, FrameType::CutBatch);
    const auto &b = out.cut_batch;
    EXPECT_EQ(b.sender, 3u);
    EXPECT_EQ(b.round, in.cut_batch.round);
    EXPECT_EQ(b.seq, 7u);
    ASSERT_EQ(b.reports.size(), 2u);
    for (std::size_t i = 0; i < b.reports.size(); ++i) {
        EXPECT_EQ(b.reports[i].round,
                  in.cut_batch.reports[i].round);
        EXPECT_EQ(b.reports[i].shard_mask,
                  in.cut_batch.reports[i].shard_mask);
        EXPECT_TRUE(sameBits(b.reports[i].max_dp,
                             in.cut_batch.reports[i].max_dp));
    }
    EXPECT_EQ(b.changed, in.cut_batch.changed);
    EXPECT_EQ(b.unchanged, in.cut_batch.unchanged);

    // Empty containers round-trip too (a pure-suppression batch).
    Frame empty;
    empty.version = 3;
    empty.type = FrameType::CutBatch;
    empty.cut_batch.sender = 0;
    empty.cut_batch.round = 0;
    const Frame eout = roundTrip(empty);
    ASSERT_EQ(eout.type, FrameType::CutBatch);
    EXPECT_TRUE(eout.cut_batch.reports.empty());
    EXPECT_TRUE(eout.cut_batch.changed.empty());
    EXPECT_TRUE(eout.cut_batch.unchanged.empty());
}

TEST(WireCodecTest, CutBatchCarriesItsEpoch)
{
    // The v3 epoch field is the recovery fence: a batch from an
    // old configuration epoch must arrive tagged so fileBatch can
    // drop it.
    Frame in;
    in.type = FrameType::CutBatch;
    in.cut_batch.sender = 1;
    in.cut_batch.epoch = 0xdeadbeefu;
    in.cut_batch.round = 17;
    in.cut_batch.seq = 2;
    const Frame out = roundTrip(in);
    ASSERT_EQ(out.type, FrameType::CutBatch);
    EXPECT_EQ(out.cut_batch.epoch, 0xdeadbeefu);
}

TEST(WireCodecTest, EpochChangeRoundTripsEveryPhase)
{
    const EpochPhase phases[] = {EpochPhase::Quiesce,
                                 EpochPhase::Rollback,
                                 EpochPhase::Resume};
    for (const EpochPhase ph : phases) {
        Frame in;
        in.type = FrameType::EpochChange;
        in.epoch_change.epoch = 3;
        in.epoch_change.phase = ph;
        in.epoch_change.resume_round = 0x123456789abcULL;
        in.epoch_change.dead_mask = 0b1010;
        if (ph == EpochPhase::Resume)
            in.epoch_change.held = {-1234.5, -0.0, 1.0 / 3.0};
        const Frame out = roundTrip(in);
        ASSERT_EQ(out.type, FrameType::EpochChange);
        EXPECT_EQ(out.epoch_change.epoch, 3u);
        EXPECT_EQ(out.epoch_change.phase, ph);
        EXPECT_EQ(out.epoch_change.resume_round,
                  in.epoch_change.resume_round);
        EXPECT_EQ(out.epoch_change.dead_mask, 0b1010u);
        ASSERT_EQ(out.epoch_change.held.size(),
                  in.epoch_change.held.size());
        for (std::size_t i = 0; i < out.epoch_change.held.size();
             ++i)
            EXPECT_TRUE(sameBits(out.epoch_change.held[i],
                                 in.epoch_change.held[i]));
    }
}

TEST(WireCodecTest, EpochAckRoundTripsPartialsBitwise)
{
    // The Ack2 partials feed the canonical held-budget fold; any
    // rounding in transit would split the survivors' re-federation
    // bits.
    Frame in;
    in.type = FrameType::EpochAck;
    in.epoch_ack.shard_id = 2;
    in.epoch_ack.epoch = 5;
    in.epoch_ack.phase = EpochPhase::Rollback;
    in.epoch_ack.last_completed = 41;
    in.epoch_ack.sum_p = {513.0, std::nextafter(170.0, 0.0)};
    in.epoch_ack.sum_e = {-1e-12, -0.0};
    const Frame out = roundTrip(in);
    ASSERT_EQ(out.type, FrameType::EpochAck);
    EXPECT_EQ(out.epoch_ack.shard_id, 2u);
    EXPECT_EQ(out.epoch_ack.epoch, 5u);
    EXPECT_EQ(out.epoch_ack.phase, EpochPhase::Rollback);
    EXPECT_EQ(out.epoch_ack.last_completed, 41u);
    ASSERT_EQ(out.epoch_ack.sum_p.size(), 2u);
    ASSERT_EQ(out.epoch_ack.sum_e.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_TRUE(sameBits(out.epoch_ack.sum_p[i],
                             in.epoch_ack.sum_p[i]));
        EXPECT_TRUE(sameBits(out.epoch_ack.sum_e[i],
                             in.epoch_ack.sum_e[i]));
    }
}

TEST(WireCodecTest, HeartbeatAndFaultStatsRoundTrip)
{
    {
        Frame in;
        in.type = FrameType::Heartbeat;
        in.heartbeat.shard_id = 7;
        in.heartbeat.epoch = 2;
        in.heartbeat.round = 0xabcdefULL;
        const Frame out = roundTrip(in);
        ASSERT_EQ(out.type, FrameType::Heartbeat);
        EXPECT_EQ(out.heartbeat.shard_id, 7u);
        EXPECT_EQ(out.heartbeat.epoch, 2u);
        EXPECT_EQ(out.heartbeat.round, 0xabcdefULL);
    }
    {
        Frame in;
        in.type = FrameType::Result;
        in.result.shard_id = 1;
        in.result.epoch = 4;
        in.result.stale_epoch_frames = 11;
        in.result.gaveup_frames = 22;
        in.result.suspect_events = 33;
        in.result.peer_suspected = 0b101;
        const Frame out = roundTrip(in);
        ASSERT_EQ(out.type, FrameType::Result);
        EXPECT_EQ(out.result.epoch, 4u);
        EXPECT_EQ(out.result.stale_epoch_frames, 11u);
        EXPECT_EQ(out.result.gaveup_frames, 22u);
        EXPECT_EQ(out.result.suspect_events, 33u);
        EXPECT_EQ(out.result.peer_suspected, 0b101u);
    }
}

TEST(WireCodecTest, MinFrameSizeAdmitsTheSmallestRealBatch)
{
    // SocketTransport validates datagram_budget >= kMinFrameSize
    // at construction; the bound must actually cover an empty
    // batch plus one changed record or the packer could emit an
    // unsendable frame.
    Frame f;
    f.type = FrameType::CutBatch;
    std::vector<std::uint8_t> buf;
    encodeFrame(f, buf);
    EXPECT_LE(buf.size() + 12, kMinFrameSize);
    EXPECT_EQ(cutBatchFrameSize(0, 1, 0), kMinFrameSize);
}

TEST(WireCodecTest, CutBatchFrameSizeMatchesEncoder)
{
    // cutBatchFrameSize is the v3 batch packer's budget
    // arithmetic; a drift between it and the encoder would make
    // the packer over- or under-fill datagrams.  (The v4 packer
    // accounts varints per item off kCutBatchV4Fixed instead.)
    const std::size_t shapes[][3] = {
        {0, 0, 0}, {1, 0, 0},  {0, 1, 0},  {0, 0, 1},
        {8, 3, 2}, {2, 40, 7}, {8, 116, 0},
    };
    for (const auto &s : shapes) {
        Frame f;
        f.version = 3;
        f.type = FrameType::CutBatch;
        f.cut_batch.reports.resize(s[0]);
        for (std::size_t i = 0; i < s[1]; ++i)
            f.cut_batch.changed.emplace_back(
                static_cast<std::uint32_t>(i), i * 0x9e3779b9ULL);
        f.cut_batch.unchanged.resize(s[2], ~0ull);
        std::vector<std::uint8_t> buf;
        encodeFrame(f, buf);
        EXPECT_EQ(buf.size(), cutBatchFrameSize(s[0], s[1], s[2]))
            << s[0] << " reports, " << s[1] << " changed, "
            << s[2] << " bitmap words";
    }
}

TEST(WireCodecTest, CutBatchV4RoundTripsEveryHotMode)
{
    // The v4 body gap-codes record indices and hot words and XOR-
    // codes value bits; decode must hand back ABSOLUTE indices and
    // the exact 64-bit patterns for every hot-bitmap encoding.
    const std::uint8_t modes[] = {kHotAll, kHotClear, kHotSparse};
    for (const std::uint8_t mode : modes) {
        Frame in;
        in.type = FrameType::CutBatch;
        in.cut_batch.sender = 1;
        in.cut_batch.epoch = 9;
        in.cut_batch.round = 0xfedcba9876543210ULL;
        in.cut_batch.seq = 0;
        in.cut_batch.total_changed = 0x123456u;
        in.cut_batch.hot_mode = mode;
        if (mode == kHotSparse)
            in.cut_batch.hot_words = {
                {0u, 0x1ULL},
                {3u, 0xdeadbeefcafef00dULL},
                {70000u, ~0ULL},
            };
        in.cut_batch.reports = {
            DpReport{/*round=*/41, /*shard_mask=*/0b1011,
                     /*max_dp=*/0.001953125},
        };
        // Strictly ascending positions, XOR deltas spanning the
        // 1-byte..10-byte varint range.
        in.cut_batch.changed = {
            {0u, 0x7fULL},
            {1u, 0x80ULL},
            {5u, 0x0000000100000000ULL},
            {1000000u, 0xffffffffffffffffULL},
        };

        const Frame out = roundTrip(in);
        ASSERT_EQ(out.type, FrameType::CutBatch);
        EXPECT_EQ(out.version, kWireVersion);
        const auto &b = out.cut_batch;
        EXPECT_EQ(b.sender, 1u);
        EXPECT_EQ(b.epoch, 9u);
        EXPECT_EQ(b.round, in.cut_batch.round);
        EXPECT_EQ(b.seq, 0u);
        EXPECT_EQ(b.total_changed, 0x123456u);
        EXPECT_EQ(b.hot_mode, mode);
        EXPECT_EQ(b.hot_words, in.cut_batch.hot_words);
        EXPECT_EQ(b.changed, in.cut_batch.changed);
        ASSERT_EQ(b.reports.size(), 1u);
        EXPECT_EQ(b.reports[0].round, 41u);
        EXPECT_TRUE(sameBits(b.reports[0].max_dp, 0.001953125));
        EXPECT_TRUE(b.unchanged.empty()); // v3-only field
    }

    // seq > 0: no hot bitmap, no total_changed on the wire.
    Frame cont;
    cont.type = FrameType::CutBatch;
    cont.cut_batch.sender = 2;
    cont.cut_batch.round = 7;
    cont.cut_batch.seq = 3;
    cont.cut_batch.changed = {{4u, 0x55ULL}, {8u, 0xaaULL}};
    const Frame cout = roundTrip(cont);
    EXPECT_EQ(cout.cut_batch.seq, 3u);
    EXPECT_EQ(cout.cut_batch.hot_mode, kHotNone);
    EXPECT_EQ(cout.cut_batch.total_changed, 0u);
    EXPECT_EQ(cout.cut_batch.changed, cont.cut_batch.changed);
}

TEST(WireCodecTest, CutBatchV4QuiescedFrameIsHeaderSized)
{
    // The steady-state claim: a fully-quiesced round from one
    // sender is a single seq-0 frame with zero records and a
    // one-byte hot encoding -- kCutBatchV4Fixed plus two zero
    // varints (n_changed, total_changed).
    Frame f;
    f.type = FrameType::CutBatch;
    f.cut_batch.sender = 0;
    f.cut_batch.round = 1000;
    f.cut_batch.seq = 0;
    f.cut_batch.hot_mode = kHotClear;
    std::vector<std::uint8_t> buf;
    encodeFrame(f, buf);
    EXPECT_EQ(buf.size(), kCutBatchV4Fixed + 2);

    const Frame out = roundTrip(f);
    EXPECT_EQ(out.cut_batch.hot_mode, kHotClear);
    EXPECT_TRUE(out.cut_batch.changed.empty());
    EXPECT_EQ(out.cut_batch.total_changed, 0u);
}

TEST(WireCodecTest, CutBatchV4TruncationAsksForMore)
{
    Frame in;
    in.type = FrameType::CutBatch;
    in.cut_batch.seq = 0;
    in.cut_batch.total_changed = 300;
    in.cut_batch.hot_mode = kHotSparse;
    in.cut_batch.hot_words = {{2u, 0xf0f0ULL}, {9u, 0x1ULL}};
    in.cut_batch.reports.resize(2);
    in.cut_batch.changed = {{1u, 0x100ULL}, {200u, 0x7fULL}};
    std::vector<std::uint8_t> buf;
    encodeFrame(in, buf);

    Frame out;
    std::size_t consumed = 0;
    for (std::size_t len = 0; len < buf.size(); ++len) {
        EXPECT_EQ(decodeFrame(buf.data(), len, out, consumed),
                  DecodeStatus::NeedMore)
            << "prefix length " << len;
        EXPECT_EQ(consumed, 0u);
    }
    EXPECT_EQ(decodeFrame(buf.data(), buf.size(), out, consumed),
              DecodeStatus::Ok);
}

TEST(WireCodecTest, CutBatchV4MalformedIsBad)
{
    // Offsets shared by every v4 CutBatch: n_reports at fixed +20,
    // hot_mode at fixed +21.
    const std::size_t n_reports_off = kWireHeaderSize + 20;
    const std::size_t hot_mode_off = kWireHeaderSize + 21;

    Frame out;
    std::size_t consumed = 0;

    // A hot bitmap on a continuation frame (seq > 0): the wake
    // channel rides seq 0 only, anything else is a corrupt or
    // hostile frame.
    {
        Frame f;
        f.type = FrameType::CutBatch;
        f.cut_batch.seq = 2;
        std::vector<std::uint8_t> buf;
        encodeFrame(f, buf);
        buf[hot_mode_off] = kHotAll;
        EXPECT_EQ(
            decodeFrame(buf.data(), buf.size(), out, consumed),
            DecodeStatus::Bad);
    }

    // hot_mode above the defined range.
    {
        Frame f;
        f.type = FrameType::CutBatch;
        f.cut_batch.seq = 0;
        std::vector<std::uint8_t> buf;
        encodeFrame(f, buf);
        buf[hot_mode_off] = kHotClear + 1;
        EXPECT_EQ(
            decodeFrame(buf.data(), buf.size(), out, consumed),
            DecodeStatus::Bad);
    }

    // Declared counts that cannot fit the payload.
    {
        Frame f;
        f.type = FrameType::CutBatch;
        f.cut_batch.seq = 0;
        f.cut_batch.reports.resize(1);
        f.cut_batch.changed = {{3u, 9ULL}};
        std::vector<std::uint8_t> buf;
        encodeFrame(f, buf);
        buf[n_reports_off] = 200; // 200 * 24 bytes > payload
        EXPECT_EQ(
            decodeFrame(buf.data(), buf.size(), out, consumed),
            DecodeStatus::Bad);
    }

    // Payload bytes left over after the declared records: Bad,
    // not silently ignored (r.done() must hold).
    {
        Frame f;
        f.type = FrameType::CutBatch;
        f.cut_batch.seq = 0;
        std::vector<std::uint8_t> buf;
        encodeFrame(f, buf);
        buf.push_back(0x00);
        const std::uint32_t plen = static_cast<std::uint32_t>(
            buf.size() - kWireHeaderSize);
        std::memcpy(buf.data() + 8, &plen, sizeof(plen));
        EXPECT_EQ(
            decodeFrame(buf.data(), buf.size(), out, consumed),
            DecodeStatus::Bad);
    }
}

TEST(WireCodecTest, FramesAboveCurrentVersionAreBad)
{
    // Negotiation keeps agreed traffic at min(mine, theirs); a
    // frame stamped from the future means the peer skipped it, and
    // this build cannot know the newer body layout.
    Frame in;
    in.type = FrameType::CutBatch;
    std::vector<std::uint8_t> buf;
    encodeFrame(in, buf);
    const std::uint16_t above = kWireVersion + 1;
    buf[4] = static_cast<std::uint8_t>(above & 0xff);
    buf[5] = static_cast<std::uint8_t>(above >> 8);
    Frame out;
    std::size_t consumed = 0;
    EXPECT_EQ(decodeFrame(buf.data(), buf.size(), out, consumed),
              DecodeStatus::Bad);
}

TEST(WireCodecTest, ResultSparsityCountersRideV4Only)
{
    Frame in;
    in.type = FrameType::Result;
    in.result.shard_id = 1;
    in.result.suppressed_frames = 111;
    in.result.delta_frames = 222;
    in.result.wake_messages = 333;

    // v4 (default): the counters round-trip.
    const Frame out = roundTrip(in);
    EXPECT_EQ(out.result.suppressed_frames, 111u);
    EXPECT_EQ(out.result.delta_frames, 222u);
    EXPECT_EQ(out.result.wake_messages, 333u);

    // v3: not on the wire, decoded as zero.
    Frame legacy = in;
    legacy.version = 3;
    const Frame lout = roundTrip(legacy);
    EXPECT_EQ(lout.version, 3u);
    EXPECT_EQ(lout.result.suppressed_frames, 0u);
    EXPECT_EQ(lout.result.delta_frames, 0u);
    EXPECT_EQ(lout.result.wake_messages, 0u);
}

TEST(WireCodecTest, TruncatedCutBatchAsksForMore)
{
    Frame in;
    in.type = FrameType::CutBatch;
    in.cut_batch.reports.resize(3);
    in.cut_batch.changed = {{1u, 2ull}, {3u, 4ull}};
    in.cut_batch.unchanged = {5ull};
    std::vector<std::uint8_t> buf;
    encodeFrame(in, buf);

    Frame out;
    std::size_t consumed = 0;
    for (std::size_t len = 0; len < buf.size(); ++len) {
        EXPECT_EQ(decodeFrame(buf.data(), len, out, consumed),
                  DecodeStatus::NeedMore)
            << "prefix length " << len;
        EXPECT_EQ(consumed, 0u);
    }

    // Internally inconsistent counts must be Bad, not a crash: a
    // payload_len too small for the declared record counts.
    // Fixed part of a CutBatch (v3 and v4 agree up to here):
    // sender u32 | epoch u32 | round u64 | seq u32, then
    // n_reports.
    std::vector<std::uint8_t> bad = buf;
    bad[kWireHeaderSize + 4 + 4 + 8 + 4] = 9; // n_reports: 3 -> 9
    EXPECT_EQ(decodeFrame(bad.data(), bad.size(), out, consumed),
              DecodeStatus::Bad);
}

TEST(WireCodecTest, TruncatedFramesAskForMore)
{
    Frame in;
    in.type = FrameType::PairTransfer;
    in.pair_transfer.pair = EdgePair{1, 2, 3, 4, 5.0, -5.0};
    std::vector<std::uint8_t> buf;
    encodeFrame(in, buf);

    // Every proper prefix must report NeedMore, never Ok or Bad:
    // a TCP reassembly loop depends on it.
    Frame out;
    std::size_t consumed = 0;
    for (std::size_t len = 0; len < buf.size(); ++len) {
        EXPECT_EQ(decodeFrame(buf.data(), len, out, consumed),
                  DecodeStatus::NeedMore)
            << "prefix length " << len;
        EXPECT_EQ(consumed, 0u);
    }
}

TEST(WireCodecTest, GarbageIsRejectedNotBuffered)
{
    Frame out;
    std::size_t consumed = 0;

    // Wrong magic: Bad immediately, even on a short buffer (the
    // receiver must not wait forever for "more" of a bad frame).
    std::uint8_t junk[16] = {0xde, 0xad, 0xbe, 0xef};
    EXPECT_EQ(decodeFrame(junk, 4, out, consumed),
              DecodeStatus::Bad);
    EXPECT_EQ(decodeFrame(junk, sizeof(junk), out, consumed),
              DecodeStatus::Bad);

    // Valid header, unknown frame type.
    Frame in;
    in.type = FrameType::RoundGo;
    std::vector<std::uint8_t> buf;
    encodeFrame(in, buf);
    buf[6] = 0x7f; // type -> 0x7f7f-ish garbage
    buf[7] = 0x7f;
    EXPECT_EQ(decodeFrame(buf.data(), buf.size(), out, consumed),
              DecodeStatus::Bad);

    // Valid header, payload length absurd.
    buf.clear();
    encodeFrame(in, buf);
    buf[8] = 0xff;
    buf[9] = 0xff;
    buf[10] = 0xff;
    buf[11] = 0xff;
    EXPECT_EQ(decodeFrame(buf.data(), buf.size(), out, consumed),
              DecodeStatus::Bad);

    // Payload shorter than the body decoder needs.
    buf.clear();
    encodeFrame(in, buf);
    buf[8] = 1; // payload_len = 1, RoundGo needs 17
    buf.resize(kWireHeaderSize + 1);
    EXPECT_EQ(decodeFrame(buf.data(), buf.size(), out, consumed),
              DecodeStatus::Bad);

    // Trailing payload bytes the body decoder did not consume.
    buf.clear();
    encodeFrame(in, buf);
    buf.push_back(0x00);
    buf[8] = static_cast<std::uint8_t>(buf.size() - kWireHeaderSize);
    EXPECT_EQ(decodeFrame(buf.data(), buf.size(), out, consumed),
              DecodeStatus::Bad);
}

TEST(WireCodecTest, VersionNegotiation)
{
    std::uint16_t agreed = 0;

    // Same version: trivially agreed.
    EXPECT_TRUE(
        negotiateVersion(kWireVersion, kWireVersion, agreed));
    EXPECT_EQ(agreed, kWireVersion);

    // A newer peer: we talk at our version (min of the two).
    EXPECT_TRUE(negotiateVersion(kWireVersion, kWireVersion + 5,
                                 agreed));
    EXPECT_EQ(agreed, kWireVersion);

    // A peer below our floor: refused.
    if (kWireMinVersion > 0) {
        EXPECT_FALSE(negotiateVersion(
            kWireVersion,
            static_cast<std::uint16_t>(kWireMinVersion - 1),
            agreed));
    }

    // Frames stamped with a version below the floor are Bad at
    // decode time too.
    Frame in;
    in.type = FrameType::RoundGo;
    std::vector<std::uint8_t> buf;
    encodeFrame(in, buf);
    buf[4] = static_cast<std::uint8_t>(kWireMinVersion - 1);
    buf[5] = 0;
    Frame out;
    std::size_t consumed = 0;
    EXPECT_EQ(decodeFrame(buf.data(), buf.size(), out, consumed),
              DecodeStatus::Bad);
}

TEST(WireCodecTest, BackToBackFramesDecodeInSequence)
{
    // Two frames appended to one buffer (the TCP case): decode
    // must consume exactly one frame at a time.
    Frame a, b;
    a.type = FrameType::RoundDone;
    a.round_done.round = 7;
    b.type = FrameType::RoundGo;
    b.round_go.round = 7;
    std::vector<std::uint8_t> buf;
    encodeFrame(a, buf);
    const std::size_t first = buf.size();
    encodeFrame(b, buf);

    Frame out;
    std::size_t consumed = 0;
    ASSERT_EQ(decodeFrame(buf.data(), buf.size(), out, consumed),
              DecodeStatus::Ok);
    EXPECT_EQ(consumed, first);
    EXPECT_EQ(out.type, FrameType::RoundDone);
    ASSERT_EQ(decodeFrame(buf.data() + consumed,
                          buf.size() - consumed, out, consumed),
              DecodeStatus::Ok);
    EXPECT_EQ(out.type, FrameType::RoundGo);
    EXPECT_EQ(consumed, buf.size() - first);
}

} // namespace
} // namespace net
} // namespace dpc
