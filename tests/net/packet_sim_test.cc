#include <gtest/gtest.h>

#include "graph/topologies.hh"
#include "net/packet_sim.hh"

namespace dpc {
namespace {

PacketLevelSim::FabricParams
quietParams()
{
    PacketLevelSim::FabricParams p;
    p.launch_jitter_us = 1e-6; // effectively simultaneous launches
    return p;
}

TEST(PacketSimTest, CoordinatorRoundDominatedBySerialReads)
{
    PacketLevelSim sim(quietParams());
    Rng rng(1);
    const double t = sim.coordinatorRoundUs(400, rng);
    // Lower bound: 400 serial reads at the coordinator plus 400
    // serial reply writes; upper bound adds switch latencies.
    EXPECT_GT(t, 400 * 200.0 + 400 * 10.0);
    EXPECT_LT(t, 400 * 200.0 + 400 * 10.0 + 400 * 3 * 2.0 + 500.0);
}

TEST(PacketSimTest, CoordinatorRoundScalesLinearly)
{
    PacketLevelSim sim(quietParams());
    Rng rng(2);
    const double t400 = sim.coordinatorRoundUs(400, rng);
    const double t800 = sim.coordinatorRoundUs(800, rng);
    EXPECT_NEAR(t800 / t400, 2.0, 0.1);
}

TEST(PacketSimTest, DibaRoundFlatInClusterSize)
{
    PacketLevelSim sim(quietParams());
    Rng rng(3);
    const double small = sim.dibaRoundUs(makeRing(80), rng);
    const double large = sim.dibaRoundUs(makeRing(6400), rng);
    // Contention at shared switches adds a little, but the round
    // stays within a small factor while N grows 80x.
    EXPECT_LT(large, 3.0 * small);
}

TEST(PacketSimTest, DibaRingRoundNearTwoReads)
{
    PacketLevelSim sim(quietParams());
    Rng rng(4);
    const double t = sim.dibaRoundUs(makeRing(400), rng);
    // Each node reads two neighbour packets serially.
    EXPECT_GT(t, 2 * 200.0);
    EXPECT_LT(t, 2 * 200.0 + 600.0);
}

TEST(PacketSimTest, DibaRoundGrowsWithDegree)
{
    PacketLevelSim sim(quietParams());
    Rng rng(5);
    Rng topo_rng(6);
    const double ring = sim.dibaRoundUs(makeRing(200), rng);
    const double dense = sim.dibaRoundUs(
        makeConnectedErdosRenyi(200, 2000, topo_rng), rng);
    EXPECT_GT(dense, 2.0 * ring);
}

TEST(PacketSimTest, CoordinatorVsDibaAtScale)
{
    // The Table 4.2 shape, re-derived at packet level.
    PacketLevelSim sim(quietParams());
    Rng rng(7);
    const double coord = sim.coordinatorRoundUs(6400, rng);
    const double diba = sim.dibaRoundUs(makeRing(6400), rng);
    EXPECT_GT(coord, 100.0 * diba);
}

TEST(PacketSimTest, ZeroLossRoundMatchesLosslessPath)
{
    PacketLevelSim sim(quietParams());
    Rng rng1(10), rng2(10);
    const double plain = sim.dibaRoundUs(makeRing(200), rng1);
    const double lossy =
        sim.dibaRoundLossyUs(makeRing(200), 0.0, rng2);
    // At zero drop rate neither attempts-loop draws, so the two
    // entry points consume identical randomness.
    EXPECT_DOUBLE_EQ(plain, lossy);
}

TEST(PacketSimTest, LossStretchesTheRoundByRetransmissions)
{
    PacketLevelSim sim(quietParams());
    Rng rng1(11), rng2(12);
    const double clean =
        sim.dibaRoundLossyUs(makeRing(400), 0.0, rng1);
    const double lossy =
        sim.dibaRoundLossyUs(makeRing(400), 0.3, rng2);
    // With 800 packets at 30% loss, some retransmission (default
    // timeout 1000 us) is all but certain, and each one pushes the
    // makespan past a full timeout window.
    EXPECT_GT(lossy, clean + 900.0);
    // Bounded retries keep it finite and within a few windows.
    EXPECT_LT(lossy, clean + 6 * 1000.0 + 1000.0);
}

TEST(PacketSimTest, LossyRoundIsSeedDeterministic)
{
    PacketLevelSim sim(quietParams());
    Rng rng1(13), rng2(13);
    const double a =
        sim.dibaRoundLossyUs(makeRing(200), 0.2, rng1);
    const double b =
        sim.dibaRoundLossyUs(makeRing(200), 0.2, rng2);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(PacketSimTest, JitterChangesButDoesNotExplodeMakespan)
{
    PacketLevelSim::FabricParams p;
    p.launch_jitter_us = 50.0;
    PacketLevelSim noisy(p);
    PacketLevelSim quiet(quietParams());
    Rng rng1(8), rng2(9);
    const double a = noisy.dibaRoundUs(makeRing(200), rng1);
    const double b = quiet.dibaRoundUs(makeRing(200), rng2);
    EXPECT_GT(a, b * 0.8);
    EXPECT_LT(a, b + 1000.0);
}

} // namespace
} // namespace dpc
