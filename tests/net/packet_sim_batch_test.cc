#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/topologies.hh"
#include "net/packet_sim.hh"
#include "net/packet_sim_batch.hh"
#include "util/rng.hh"

namespace dpc {
namespace {

/** Standalone makespan of one lane's configuration. */
double
standaloneOf(const PacketLane &l)
{
    PacketLevelSim sim(l.params);
    Rng rng(l.loss_seed);
    return sim.dibaRoundLossyUs(l.overlay, l.drop_rate, rng,
                                l.max_retx);
}

std::vector<PacketLane>
mixedGrid(std::size_t n)
{
    std::vector<PacketLane> lanes;
    const double drops[] = {0.0, 0.05, 0.15, 0.3};
    for (const bool chordal : {false, true}) {
        Rng topo(29);
        const Graph g = chordal ? makeChordalRing(n, n / 8, topo)
                                : makeRing(n);
        for (const double drop : drops) {
            PacketLane l;
            l.overlay = g;
            l.drop_rate = drop;
            l.loss_seed = 0xbeef + lanes.size();
            lanes.push_back(std::move(l));
        }
    }
    return lanes;
}

TEST(PacketLevelBatchTest, EveryLaneBitwiseEqualsStandalone)
{
    const auto lanes = mixedGrid(96);
    PacketLevelBatch batch(lanes);
    const auto out = batch.dibaRoundUs();
    ASSERT_EQ(out.size(), lanes.size());
    for (std::size_t r = 0; r < lanes.size(); ++r)
        EXPECT_EQ(out[r], standaloneOf(lanes[r]))
            << "lane " << r << " diverges from the standalone DES";
}

TEST(PacketLevelBatchTest, SingleLaneBatchEqualsStandalone)
{
    PacketLane l;
    l.overlay = makeRing(64);
    l.drop_rate = 0.1;
    l.loss_seed = 7;
    const double solo = standaloneOf(l);
    PacketLevelBatch batch({l});
    const auto out = batch.dibaRoundUs();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], solo);
}

TEST(PacketLevelBatchTest, RepeatedRoundsReuseArenasBitwise)
{
    const auto lanes = mixedGrid(48);
    PacketLevelBatch batch(lanes);
    const auto first = batch.dibaRoundUs();
    // Warm calls reuse the SoA and calendar arenas; the result is
    // a pure function of the lane configurations.
    const auto second = batch.dibaRoundUs();
    const auto third = batch.dibaRoundUs();
    EXPECT_EQ(first, second);
    EXPECT_EQ(first, third);
}

TEST(PacketLevelBatchTest, EngineIsMovable)
{
    const auto lanes = mixedGrid(32);
    PacketLevelBatch batch(lanes);
    const auto before = batch.dibaRoundUs();
    PacketLevelBatch moved(std::move(batch));
    EXPECT_EQ(moved.numLanes(), lanes.size());
    EXPECT_EQ(moved.dibaRoundUs(), before);
}

TEST(PacketLevelBatchTest, DistinctSeedsGiveDistinctLossyLanes)
{
    // Two lanes identical except for the loss seed must diverge
    // (retransmission draws differ), while two fully identical
    // lanes must agree -- the per-lane Rng is really per lane.
    PacketLane a;
    a.overlay = makeRing(64);
    a.drop_rate = 0.2;
    a.loss_seed = 1;
    PacketLane b = a;
    b.loss_seed = 2;
    PacketLane c = a;
    PacketLevelBatch batch({a, b, c});
    const auto out = batch.dibaRoundUs();
    EXPECT_NE(out[0], out[1]);
    EXPECT_EQ(out[0], out[2]);
}

TEST(PacketLevelBatchTest, LaneParallelBitwiseEqualsSerial)
{
    // The lane-chunked engine must be invisible in the results:
    // every thread count partitions the same independent lanes, so
    // the makespans equal both the serial batch and the standalone
    // simulator bitwise, across repeated rounds (arena reuse per
    // chunk included).
    const auto lanes = mixedGrid(48);
    PacketLevelBatch serial(lanes);
    const auto ref = serial.dibaRoundUs();
    for (const std::size_t threads : {1u, 2u, 3u, 5u, 16u}) {
        PacketLevelBatch mt(lanes, threads);
        EXPECT_EQ(mt.dibaRoundUs(), ref)
            << "threads=" << threads;
        EXPECT_EQ(mt.dibaRoundUs(), ref)
            << "threads=" << threads << " round 2";
    }
    for (std::size_t r = 0; r < lanes.size(); ++r)
        EXPECT_EQ(ref[r], standaloneOf(lanes[r])) << "lane " << r;
}

TEST(PacketLevelBatchTest, LaneParallelZeroThreadsIsSerial)
{
    const auto lanes = mixedGrid(32);
    PacketLevelBatch a(lanes);
    PacketLevelBatch b(lanes, 0);
    EXPECT_EQ(a.dibaRoundUs(), b.dibaRoundUs());
}

TEST(PacketLevelBatchTest, LaneParallelMovable)
{
    auto lanes = mixedGrid(32);
    PacketLevelBatch batch(std::move(lanes), 3);
    const auto before = batch.dibaRoundUs();
    PacketLevelBatch moved(std::move(batch));
    EXPECT_EQ(moved.dibaRoundUs(), before);
}

} // namespace
} // namespace dpc
