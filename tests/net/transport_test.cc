#include <gtest/gtest.h>

#include <cstring>

#include "alloc/diba.hh"
#include "fault/lossy_channel.hh"
#include "graph/topologies.hh"
#include "net/transport.hh"
#include "tests/alloc/test_problems.hh"

namespace dpc {
namespace {

void
expectBitwiseEqual(const std::vector<double> &a,
                   const std::vector<double> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i], b[i]) << "index " << i;
        EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
            << "bit pattern differs at index " << i;
    }
}

TEST(LoopbackTransportTest, DrainsOfferedPairsFifo)
{
    net::LoopbackTransport t;
    t.beginRound(0, 8);
    for (std::uint32_t e = 0; e < 5; ++e) {
        net::EdgePair pair{e, e, e + 1, /*round=*/0,
                           /*e_u=*/-1.0 * e, /*e_v=*/1.0 * e};
        t.send(pair);
    }
    net::Delivery d;
    for (std::uint32_t e = 0; e < 5; ++e) {
        ASSERT_TRUE(t.poll(d));
        EXPECT_EQ(d.pair.edge_id, e);
        // Identity transport: fresh delivery, no remote halves.
        EXPECT_TRUE(d.fate.delivered);
        EXPECT_EQ(d.fate.lag, 0u);
        EXPECT_FALSE(d.update_u);
        EXPECT_FALSE(d.update_v);
    }
    EXPECT_FALSE(t.poll(d));
    // beginRound resets the queue.
    t.beginRound(1, 8);
    EXPECT_FALSE(t.poll(d));
}

TEST(LoopbackTransportTest, ChannelFatesSurfaceUnchanged)
{
    LossyChannel::Config cfg;
    cfg.drop_rate = 0.4;
    cfg.delay_rate = 0.3;
    cfg.max_lag = 2;

    // Fates drawn through the adapter equal fates drawn from a
    // twin channel directly: send() preserves the historical query
    // order and arguments exactly.
    LossyChannel via_adapter(cfg, 17), direct(cfg, 17);
    net::LoopbackTransport t(via_adapter);
    for (std::uint64_t r = 0; r < 20; ++r) {
        t.beginRound(r, 30);
        direct.beginRound(30);
        for (std::uint32_t e = 0; e < 30; ++e)
            t.send(net::EdgePair{e, e, e + 1, r, 0.0, 0.0});
        net::Delivery d;
        for (std::uint32_t e = 0; e < 30; ++e) {
            ASSERT_TRUE(t.poll(d));
            const EdgeFate ref = direct.fate(e, e, e + 1);
            EXPECT_EQ(d.fate.delivered, ref.delivered);
            EXPECT_EQ(d.fate.lag, ref.lag);
        }
        EXPECT_FALSE(t.poll(d));
    }
    EXPECT_EQ(t.maxLag(), 2u);
}

TEST(TransportRoundTest, IdentityLoopbackMatchesPlainIterate)
{
    // iterateWithTransport over the identity loopback is the same
    // round as iterate(), bit for bit -- the pin the whole
    // Transport promotion rests on.
    const auto prob = test::npbProblem(64, 170.0, 5);
    Rng topo_rng(9);
    const auto topo = makeChordalRing(64, 8, topo_rng);

    DibaAllocator plain(topo, DibaAllocator::Config{});
    DibaAllocator routed(topo, DibaAllocator::Config{});
    plain.reset(prob);
    routed.reset(prob);

    net::LoopbackTransport loopback;
    for (int r = 0; r < 40; ++r) {
        const double a = plain.iterate();
        const double b = routed.iterateWithTransport(loopback);
        EXPECT_DOUBLE_EQ(a, b) << "round " << r;
    }
    expectBitwiseEqual(plain.power(), routed.power());
    expectBitwiseEqual(plain.estimates(), routed.estimates());
}

TEST(TransportRoundTest, LossyDecoratorMatchesChannelPath)
{
    // LossyTransport over LoopbackTransport with seed s ==
    // stepWithChannel(LossyChannel(cfg, s)): the decorator draws
    // fates in the identical canonical order, so the trajectories
    // coincide bitwise.
    LossyChannel::Config loss;
    loss.drop_rate = 0.2;
    loss.burst_enter = 0.05;
    loss.delay_rate = 0.15;
    loss.max_lag = 3;

    const auto prob = test::npbProblem(48, 170.0, 7);
    Rng topo_rng(3);
    const auto topo = makeChordalRing(48, 6, topo_rng);

    DibaAllocator via_chan(topo, DibaAllocator::Config{});
    DibaAllocator via_transport(topo, DibaAllocator::Config{});
    via_chan.reset(prob);
    via_transport.reset(prob);

    LossyChannel chan(loss, 1234);
    net::LoopbackTransport loopback;
    fault::LossyTransport lossy(loopback, loss, 1234);

    for (int r = 0; r < 60; ++r) {
        const double a = via_chan.stepWithChannel(chan);
        const double b = via_transport.stepWithTransport(lossy);
        EXPECT_DOUBLE_EQ(a, b) << "round " << r;
        EXPECT_EQ(via_chan.converged(), via_transport.converged())
            << "round " << r;
    }
    expectBitwiseEqual(via_chan.power(), via_transport.power());
    expectBitwiseEqual(via_chan.estimates(),
                       via_transport.estimates());
    // Identical draw sequences: the decorator's embedded channel
    // saw exactly the fates the reference channel dealt.
    EXPECT_EQ(lossy.channel().stats().offered,
              chan.stats().offered);
    EXPECT_EQ(lossy.channel().stats().dropped,
              chan.stats().dropped);
    EXPECT_EQ(lossy.channel().stats().stale, chan.stats().stale);
}

TEST(TransportRoundTest, TransportRoundSurvivesNodeChurn)
{
    // Dead endpoints/edges are skipped before send(), so the
    // channel inside the decorator consumes no draws for them and
    // the trajectory matches the channel-routed path under churn.
    LossyChannel::Config loss;
    loss.drop_rate = 0.1;

    const auto prob = test::npbProblem(32, 170.0, 11);
    Rng topo_rng(4);
    const auto topo = makeChordalRing(32, 6, topo_rng);

    DibaAllocator via_chan(topo, DibaAllocator::Config{});
    DibaAllocator via_transport(topo, DibaAllocator::Config{});
    via_chan.reset(prob);
    via_transport.reset(prob);

    LossyChannel chan(loss, 77);
    net::LoopbackTransport loopback;
    fault::LossyTransport lossy(loopback, loss, 77);

    for (int r = 0; r < 50; ++r) {
        if (r == 10) {
            via_chan.failNode(5);
            via_transport.failNode(5);
        }
        if (r == 30) {
            via_chan.joinNode(5);
            via_transport.joinNode(5);
        }
        const double a = via_chan.stepWithChannel(chan);
        const double b = via_transport.stepWithTransport(lossy);
        EXPECT_DOUBLE_EQ(a, b) << "round " << r;
    }
    expectBitwiseEqual(via_chan.power(), via_transport.power());
    EXPECT_EQ(lossy.channel().stats().offered,
              chan.stats().offered);
}

} // namespace
} // namespace dpc
