#include <gtest/gtest.h>

#include "graph/topologies.hh"
#include "net/comm_model.hh"

namespace dpc {
namespace {

TEST(CommModelTest, CoordinatorRoundScalesLinearly)
{
    CommModel model;
    EXPECT_DOUBLE_EQ(model.coordinatorRoundUs(400), 400 * 210.0);
    EXPECT_DOUBLE_EQ(model.coordinatorRoundUs(800),
                     2.0 * model.coordinatorRoundUs(400));
}

TEST(CommModelTest, SampledRoundNearExpectation)
{
    CommModel model;
    Rng rng(3);
    double acc = 0.0;
    const int trials = 50;
    for (int i = 0; i < trials; ++i)
        acc += model.coordinatorRoundUs(400, rng);
    const double avg = acc / trials;
    // Queueing jitter only adds a few percent over the serial bound.
    EXPECT_GT(avg, model.coordinatorRoundUs(400) * 0.95);
    EXPECT_LT(avg, model.coordinatorRoundUs(400) * 1.30);
}

TEST(CommModelTest, DibaRoundIndependentOfClusterSize)
{
    CommModel model;
    const auto small = makeRing(10);
    const auto large = makeRing(6400);
    EXPECT_DOUBLE_EQ(model.dibaRoundUs(small),
                     model.dibaRoundUs(large));
    EXPECT_DOUBLE_EQ(model.dibaRoundUs(large), 200.0 + 2 * 10.0);
}

TEST(CommModelTest, DibaRoundGrowsWithDegree)
{
    CommModel model;
    EXPECT_LT(model.dibaRoundUs(2), model.dibaRoundUs(8));
}

TEST(CommModelTest, DibaFarCheaperThanCoordinatorAtScale)
{
    CommModel model;
    // The Table 4.2 shape: at 6400 nodes a coordinator round is
    // thousands of times more expensive than a ring round.
    EXPECT_GT(model.coordinatorRoundUs(6400),
              100.0 * model.dibaRoundUs(2));
}

TEST(CommModelTest, PacketCounts)
{
    EXPECT_EQ(CommModel::coordinatorPacketsPerRound(100), 200u);
    const auto ring = makeRing(100);
    EXPECT_EQ(CommModel::dibaPacketsPerRound(ring), 200u);
    // dN packets for average degree d (Sec. 4.3.2).
    Rng rng(1);
    const auto er = makeConnectedErdosRenyi(100, 300, rng);
    EXPECT_EQ(CommModel::dibaPacketsPerRound(er), 600u);
}

TEST(CommModelTest, CustomParams)
{
    CommModel model(NetParams{100.0, 5.0});
    EXPECT_DOUBLE_EQ(model.coordinatorRoundUs(10), 1050.0);
    EXPECT_DOUBLE_EQ(model.dibaRoundUs(3), 115.0);
}

TEST(CommModelTest, IsolatedNodePanics)
{
    CommModel model;
    EXPECT_DEATH(model.dibaRoundUs(std::size_t{0}), "isolated");
}

} // namespace
} // namespace dpc
