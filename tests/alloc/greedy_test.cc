#include <gtest/gtest.h>

#include "alloc/greedy.hh"
#include "alloc/kkt.hh"
#include "alloc/uniform.hh"
#include "tests/alloc/test_problems.hh"

namespace dpc {
namespace {

TEST(GreedyTest, StaysWithinBudgetAndBoxes)
{
    const auto prob = test::npbProblem(50, 165.0, 1);
    GreedyTpwAllocator greedy;
    const auto res = greedy.allocate(prob);
    EXPECT_LE(res.totalPower(), prob.budget + 1e-9);
    for (std::size_t i = 0; i < prob.size(); ++i) {
        EXPECT_GE(res.power[i],
                  prob.utilities[i]->minPower() - 1e-9);
        EXPECT_LE(res.power[i],
                  prob.utilities[i]->maxPower() + 1e-9);
    }
}

TEST(GreedyTest, UsesBudgetWhenAvailable)
{
    const auto prob = test::npbProblem(50, 170.0, 2);
    GreedyTpwAllocator greedy;
    const auto res = greedy.allocate(prob);
    // Leaves less than one increment per server unspent.
    EXPECT_GT(res.totalPower(),
              prob.budget - 5.0 * static_cast<double>(prob.size()));
}

TEST(GreedyTest, NeverBeatsOracle)
{
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        const auto prob = test::npbProblem(60, 168.0, seed);
        GreedyTpwAllocator greedy;
        const auto res = greedy.allocate(prob);
        const auto opt = solveKkt(prob);
        EXPECT_LE(res.utility, opt.utility + 1e-9);
    }
}

TEST(GreedyTest, SuboptimalOnCrossoverWorkloads)
{
    // Fig. 3.1's point: throughput-per-Watt ranking picks the wrong
    // server when curves cross.  Server A: high value at low power
    // but saturated (high tau/p, nothing to gain).  Server B: low
    // value now but steep gains.
    AllocationProblem prob;
    prob.utilities.push_back(std::make_shared<QuadraticUtility>(
        QuadraticUtility::fromShape(0.97, 1.0, 100.0, 200.0, 3.0)));
    prob.utilities.push_back(std::make_shared<QuadraticUtility>(
        QuadraticUtility::fromShape(0.30, 0.0, 100.0, 200.0, 1.0)));
    prob.budget = 300.0;
    GreedyTpwAllocator greedy;
    const auto res = greedy.allocate(prob);
    const auto opt = solveKkt(prob);
    // Greedy funnels power to the saturated high-tau/p server and
    // loses measurable utility.
    EXPECT_GT(res.power[0], res.power[1]);
    EXPECT_LT(res.utility, opt.utility - 1e-3);
}

TEST(GreedyTest, RejectsNonPositiveIncrement)
{
    GreedyTpwAllocator::Config cfg;
    cfg.increment = 0.0;
    GreedyTpwAllocator greedy(cfg);
    auto prob = test::tinyProblem();
    EXPECT_DEATH(greedy.allocate(prob), "increment");
}

TEST(UniformTest, EqualSharesClamped)
{
    const auto prob = test::npbProblem(40, 170.0, 5);
    UniformAllocator uniform;
    const auto res = uniform.allocate(prob);
    for (double p : res.power)
        EXPECT_DOUBLE_EQ(p, 170.0);
    EXPECT_NEAR(res.totalPower(), prob.budget, 1e-9);
}

TEST(UniformTest, TrailsOracleOnHeterogeneousMixes)
{
    const auto prob = test::npbProblem(100, 170.0, 6);
    UniformAllocator uniform;
    const auto res = uniform.allocate(prob);
    const auto opt = solveKkt(prob);
    EXPECT_LT(res.utility, opt.utility);
}

} // namespace
} // namespace dpc
