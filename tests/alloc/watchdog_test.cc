#include <gtest/gtest.h>

#include "alloc/centralized.hh"
#include "alloc/diba.hh"
#include "alloc/watchdog.hh"
#include "fault/invariant_checker.hh"
#include "graph/topologies.hh"
#include "metrics/performance.hh"
#include "tests/alloc/test_problems.hh"

namespace dpc {
namespace {

DibaAllocator
makeDiba(std::size_t n, double watts_per_node, std::uint64_t seed)
{
    Rng topo_rng(seed);
    DibaAllocator diba(makeChordalRing(n, n / 4, topo_rng));
    diba.reset(test::npbProblem(n, watts_per_node, seed));
    return diba;
}

TEST(ConvergenceWatchdogTest, ConvergingRunNeverEscalates)
{
    // At the default (last-resort) window, a healthy run's long
    // annealing plateaus -- where the residual can rise for a
    // hundred rounds before dropping again -- never read as stalls.
    auto diba = makeDiba(24, 170.0, 21);
    ConvergenceWatchdog dog;
    for (int r = 0; r < 300; ++r) {
        const double moved = diba.iterate();
        EXPECT_EQ(dog.observe(diba, moved),
                  ConvergenceWatchdog::Action::None);
    }
    EXPECT_EQ(dog.stats().reheats, 0u);
    EXPECT_EQ(dog.stats().reseeds, 0u);
    EXPECT_EQ(dog.stats().fallbacks, 0u);
    EXPECT_EQ(dog.stage(), 0u);
}

TEST(ConvergenceWatchdogTest, PersistentStallClimbsTheLadder)
{
    auto diba = makeDiba(16, 170.0, 22);
    ConvergenceWatchdog::Config cfg;
    cfg.window = 4;
    ConvergenceWatchdog dog(cfg);
    // Feed a flat residual far above tolerance: every second
    // window (the one with a baseline) reads as a stall.
    std::vector<ConvergenceWatchdog::Action> fired;
    for (int r = 0; r < 10 * 4; ++r) {
        const auto a = dog.observe(diba, 1.0);
        if (a != ConvergenceWatchdog::Action::None)
            fired.push_back(a);
    }
    ASSERT_GE(fired.size(), 3u);
    EXPECT_EQ(fired[0], ConvergenceWatchdog::Action::Reheat);
    EXPECT_EQ(fired[1], ConvergenceWatchdog::Action::Reseed);
    EXPECT_EQ(fired[2], ConvergenceWatchdog::Action::Fallback);
    // The ladder saturates at fallback instead of overflowing.
    for (std::size_t i = 3; i < fired.size(); ++i)
        EXPECT_EQ(fired[i], ConvergenceWatchdog::Action::Fallback);
    EXPECT_EQ(dog.stage(), 3u);
}

TEST(ConvergenceWatchdogTest, DisturbanceResetsTheLadder)
{
    auto diba = makeDiba(16, 170.0, 23);
    ConvergenceWatchdog::Config cfg;
    cfg.window = 4;
    ConvergenceWatchdog dog(cfg);
    for (int r = 0; r < 8; ++r)
        dog.observe(diba, 1.0);
    EXPECT_EQ(dog.stage(), 1u);
    dog.noteDisturbance();
    EXPECT_EQ(dog.stage(), 0u);
    // Post-disturbance, the first window rebuilds its baseline
    // before any stall can fire again.
    for (int r = 0; r < 4; ++r)
        EXPECT_EQ(dog.observe(diba, 1.0),
                  ConvergenceWatchdog::Action::None);
}

TEST(ConvergenceWatchdogTest, FallbackPreservesInvariantsAndQuality)
{
    const std::size_t n = 32;
    const auto prob = test::npbProblem(n, 170.0, 24);
    Rng topo_rng(24);
    DibaAllocator diba(makeChordalRing(n, 8, topo_rng));
    diba.reset(prob);
    for (int r = 0; r < 10; ++r)
        diba.iterate(); // leave the state mid-flight

    ConvergenceWatchdog::Config cfg;
    cfg.window = 4;
    ConvergenceWatchdog dog(cfg);
    // Force the ladder straight through to the fallback.
    std::size_t guard = 0;
    while (dog.stats().fallbacks == 0 && guard++ < 100)
        dog.observe(diba, 5.0);
    ASSERT_EQ(dog.stats().fallbacks, 1u);

    InvariantChecker checker;
    checker.check(diba); // conservation + strict slack survived

    // The adopted caps are near the centralized optimum (the
    // fallback holds back fallback_margin of the headroom).
    const double got = totalUtility(prob.utilities, diba.power());
    const auto opt = CentralizedAllocator().allocate(prob);
    const double best = totalUtility(prob.utilities, opt.power);
    EXPECT_GE(got, 0.95 * best);
    EXPECT_LT(diba.totalPower(), prob.budget);
}

TEST(ConvergenceWatchdogTest, HierarchicalFallbackAlsoHolds)
{
    const std::size_t n = 48;
    const auto prob = test::npbProblem(n, 170.0, 25);
    Rng topo_rng(25);
    DibaAllocator diba(makeChordalRing(n, 12, topo_rng));
    diba.reset(prob);
    for (int r = 0; r < 5; ++r)
        diba.iterate();

    ConvergenceWatchdog::Config cfg;
    cfg.window = 4;
    cfg.fallback = ConvergenceWatchdog::FallbackScheme::Hierarchical;
    cfg.hierarchical_rack = 16;
    ConvergenceWatchdog dog(cfg);
    std::size_t guard = 0;
    while (dog.stats().fallbacks == 0 && guard++ < 100)
        dog.observe(diba, 5.0);
    ASSERT_EQ(dog.stats().fallbacks, 1u);
    InvariantChecker checker;
    checker.check(diba);
    EXPECT_LT(diba.totalPower(), prob.budget);
}

TEST(ConvergenceWatchdogTest, ConfigValidationPanics)
{
    ConvergenceWatchdog::Config short_window;
    short_window.window = 2;
    EXPECT_DEATH(ConvergenceWatchdog dog(short_window), "window");

    ConvergenceWatchdog::Config bad_margin;
    bad_margin.fallback_margin = 1.0;
    EXPECT_DEATH(ConvergenceWatchdog dog(bad_margin), "margin");
}

} // namespace
} // namespace dpc
