/**
 * @file
 * The stepwise IterativeAllocator protocol: a manual
 * reset/step/converged loop must reproduce allocate() exactly for
 * every scheme, and the Builder must assemble problems
 * equivalently to the hand-rolled construction it replaced.
 */

#include <gtest/gtest.h>

#include "alloc/centralized.hh"
#include "alloc/diba.hh"
#include "alloc/primal_dual.hh"
#include "graph/topologies.hh"
#include "tests/alloc/test_problems.hh"
#include "workload/generator.hh"

namespace dpc {
namespace {

/** Drive `alloc` by hand exactly as allocate() does. */
AllocationResult
manualSolve(IterativeAllocator &alloc, const AllocationProblem &prob)
{
    alloc.reset(prob);
    Rng rng(0x5eed0fd1baULL);
    while (!alloc.converged() &&
           alloc.iterations() < alloc.maxIterations())
        alloc.step(rng);
    return alloc.result();
}

void
expectIdenticalResults(const AllocationResult &a,
                       const AllocationResult &b)
{
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.utility, b.utility);
    ASSERT_EQ(a.power.size(), b.power.size());
    for (std::size_t i = 0; i < a.power.size(); ++i)
        EXPECT_EQ(a.power[i], b.power[i]) << "at node " << i;
}

TEST(IterativeAllocatorTest, DibaStepLoopMatchesAllocate)
{
    const auto prob = test::npbProblem(40, 170.0, 71);
    DibaAllocator manual(makeRing(40));
    DibaAllocator oneshot(makeRing(40));
    expectIdenticalResults(manualSolve(manual, prob),
                           oneshot.allocate(prob));
}

TEST(IterativeAllocatorTest, PrimalDualStepLoopMatchesAllocate)
{
    const auto prob = test::npbProblem(40, 170.0, 72);
    PrimalDualAllocator manual;
    PrimalDualAllocator oneshot;
    expectIdenticalResults(manualSolve(manual, prob),
                           oneshot.allocate(prob));
}

TEST(IterativeAllocatorTest, CentralizedStepLoopMatchesAllocate)
{
    const auto prob = test::npbProblem(40, 170.0, 73);
    CentralizedAllocator manual;
    CentralizedAllocator oneshot;
    expectIdenticalResults(manualSolve(manual, prob),
                           oneshot.allocate(prob));
}

TEST(IterativeAllocatorTest, StepAfterConvergenceIsANoOp)
{
    const auto prob = test::npbProblem(24, 170.0, 74);
    CentralizedAllocator alloc;
    alloc.allocate(prob);
    ASSERT_TRUE(alloc.converged());
    const auto before = alloc.result();
    Rng rng(1);
    EXPECT_EQ(alloc.step(rng), 0.0);
    expectIdenticalResults(before, alloc.result());
}

TEST(IterativeAllocatorTest, ResultSnapshotsMidRun)
{
    const auto prob = test::npbProblem(24, 170.0, 75);
    PrimalDualAllocator pd;
    pd.reset(prob);
    Rng rng(2);
    for (int it = 0; it < 5 && !pd.converged(); ++it)
        pd.step(rng);
    const auto res = pd.result();
    EXPECT_EQ(res.iterations, pd.iterations());
    EXPECT_EQ(res.power.size(), prob.size());
    // The mid-run snapshot is already feasible (projected).
    EXPECT_LE(res.totalPower(), prob.budget + 1e-6);
}

TEST(IterativeAllocatorTest, DefaultSetBudgetRestartsScheme)
{
    const auto prob = test::npbProblem(16, 170.0, 76);
    CentralizedAllocator alloc;
    alloc.allocate(prob);
    ASSERT_GT(alloc.iterations(), 0u);
    alloc.setBudget(prob.budget * 0.9);
    EXPECT_DOUBLE_EQ(alloc.problem().budget, prob.budget * 0.9);
    EXPECT_EQ(alloc.iterations(), 0u); // cold restart
    EXPECT_FALSE(alloc.converged());
}

TEST(IterativeAllocatorTest, ProblemAccessorTracksReset)
{
    const auto prob = test::tinyProblem();
    CentralizedAllocator alloc;
    alloc.reset(prob);
    EXPECT_EQ(alloc.problem().size(), 2u);
    EXPECT_DOUBLE_EQ(alloc.problem().budget, 310.0);
}

TEST(BuilderTest, BudgetPerNodeResolvesAgainstFinalCount)
{
    const auto prob = AllocationProblem::Builder()
                          .npbCluster(8, 5)
                          .budgetPerNode(170.0)
                          .build();
    EXPECT_EQ(prob.size(), 8u);
    EXPECT_DOUBLE_EQ(prob.budget, 8 * 170.0);
}

TEST(BuilderTest, NpbClusterMatchesHandRolledGeneration)
{
    const auto built = AllocationProblem::Builder()
                           .npbCluster(16, 99)
                           .budget(2700.0)
                           .build();
    Rng rng(99);
    const auto hand = utilitiesOf(drawNpbAssignment(16, rng));
    ASSERT_EQ(built.utilities.size(), hand.size());
    for (std::size_t i = 0; i < hand.size(); ++i) {
        EXPECT_EQ(built.utilities[i]->minPower(),
                  hand[i]->minPower());
        EXPECT_EQ(built.utilities[i]->maxPower(),
                  hand[i]->maxPower());
        const double mid = 0.5 * (hand[i]->minPower() +
                                  hand[i]->maxPower());
        EXPECT_EQ(built.utilities[i]->value(mid),
                  hand[i]->value(mid));
    }
}

TEST(BuilderTest, MixedSourcesCompose)
{
    const auto prob = AllocationProblem::Builder()
                          .quadratic(0.4, 0.2, 100.0, 200.0)
                          .npbCluster(4, 1)
                          .budgetPerNode(180.0)
                          .build();
    EXPECT_EQ(prob.size(), 5u);
    EXPECT_DOUBLE_EQ(prob.budget, 5 * 180.0);
}

TEST(BuilderTest, BudgetFormsAreMutuallyExclusive)
{
    EXPECT_DEATH(AllocationProblem::Builder()
                     .budget(100.0)
                     .budgetPerNode(10.0),
                 "alternatives");
    EXPECT_DEATH(AllocationProblem::Builder()
                     .budgetPerNode(10.0)
                     .budget(100.0),
                 "alternatives");
}

TEST(BuilderTest, BuildSkipsFeasibilityValidation)
{
    // Deliberately infeasible: allocators reject it at reset(),
    // but the builder itself must not.
    const auto prob = AllocationProblem::Builder()
                          .quadratic(0.4, 0.2, 100.0, 200.0)
                          .budget(50.0)
                          .build();
    EXPECT_FALSE(prob.isFeasible());
    CentralizedAllocator alloc;
    EXPECT_DEATH(alloc.reset(prob), "infeasible");
}

} // namespace
} // namespace dpc
