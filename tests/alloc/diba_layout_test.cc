/**
 * @file
 * Layout transparency of DibaAllocator: Config::layout relabels the
 * live CSR overlay at build time, and NOTHING observable may change.
 * Every public view (power/estimates/utilities/overlayEdges/
 * topology/result) speaks original ids, and the scalar round, the
 * threaded round, the colored sweep (with and without a lossy
 * channel) and the full churn machinery (fail/join/edge mask,
 * incremental coloring repair) must be bitwise identical to the
 * identity-layout allocator -- the permutation moves cache lines,
 * never results.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "alloc/diba.hh"
#include "fault/lossy_channel.hh"
#include "graph/reorder.hh"
#include "graph/topologies.hh"
#include "tests/alloc/test_problems.hh"
#include "util/rng.hh"

namespace dpc {
namespace {

constexpr std::size_t kNodes = 96;
constexpr std::uint64_t kProblemSeed = 61;
constexpr std::uint64_t kSweepSeed = 5151;

/**
 * An id-scrambled chordal ring: isomorphic to the well-laid-out
 * ring but with adversarial vertex ids, so every non-identity
 * layout has real work to do (and RCM provably picks a non-trivial
 * permutation).
 */
Graph
scrambledTopology()
{
    Rng rng(17);
    const Graph ring = makeChordalRing(kNodes, kNodes / 4, rng);
    std::vector<std::uint32_t> shuf(ring.numVertices());
    std::iota(shuf.begin(), shuf.end(), 0u);
    rng.shuffle(shuf);
    return ring.relabeled(shuf);
}

DibaAllocator
makeAllocator(const Graph &g, Layout layout,
              std::size_t threads = 0)
{
    DibaAllocator::Config cfg;
    cfg.layout = layout;
    cfg.num_threads = threads;
    return DibaAllocator(g, cfg);
}

void
expectBitwiseEqual(const DibaAllocator &a, const DibaAllocator &b,
                   const char *what)
{
    ASSERT_EQ(a.power().size(), b.power().size());
    for (std::size_t i = 0; i < a.power().size(); ++i) {
        ASSERT_EQ(a.power()[i], b.power()[i])
            << what << ": power diverges at node " << i;
        ASSERT_EQ(a.estimates()[i], b.estimates()[i])
            << what << ": estimate diverges at node " << i;
    }
}

} // namespace

TEST(DibaLayoutTest, ViewsSpeakOriginalIds)
{
    const Graph g = scrambledTopology();
    DibaAllocator id = makeAllocator(g, Layout::identity);
    DibaAllocator rcm = makeAllocator(g, Layout::rcm);

    EXPECT_FALSE(id.layoutActive());
    ASSERT_TRUE(rcm.layoutActive())
        << "RCM must pick a non-trivial permutation on a "
           "scrambled chordal ring";

    // topology() is the caller's graph regardless of layout.
    const Graph &tv = rcm.topology();
    ASSERT_EQ(tv.numVertices(), g.numVertices());
    for (std::size_t v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(tv.neighbors(v), g.neighbors(v));

    // overlayEdges() is the canonical original-id enumeration:
    // edge id k of the permuted allocator names the same pair as
    // edge id k of the identity allocator.
    ASSERT_EQ(rcm.overlayEdges().size(), id.overlayEdges().size());
    for (std::size_t k = 0; k < id.overlayEdges().size(); ++k)
        EXPECT_EQ(rcm.overlayEdges()[k], id.overlayEdges()[k]);
}

TEST(DibaLayoutTest, ScalarRoundsBitwiseInvariant)
{
    const Graph g = scrambledTopology();
    const auto prob = test::npbProblem(kNodes, 171.0, kProblemSeed);

    DibaAllocator id = makeAllocator(g, Layout::identity);
    id.reset(prob);
    for (const Layout l :
         {Layout::rcm, Layout::bisection, Layout::automatic}) {
        DibaAllocator perm = makeAllocator(g, l);
        perm.reset(prob);
        expectBitwiseEqual(id, perm, "reset");
        DibaAllocator id2 = makeAllocator(g, Layout::identity);
        id2.reset(prob);
        for (int r = 0; r < 40; ++r) {
            ASSERT_EQ(id2.iterate(), perm.iterate());
            expectBitwiseEqual(id2, perm, layoutName(l));
        }
        const AllocationResult ra = id2.result();
        const AllocationResult rb = perm.result();
        ASSERT_EQ(ra.power, rb.power);
        EXPECT_EQ(ra.utility, rb.utility);
    }
}

TEST(DibaLayoutTest, ThreadedRoundsMatchScalarUnderLayout)
{
    const Graph g = scrambledTopology();
    const auto prob = test::npbProblem(kNodes, 171.0, kProblemSeed);

    DibaAllocator scalar = makeAllocator(g, Layout::identity, 0);
    DibaAllocator mt = makeAllocator(g, Layout::rcm, 3);
    scalar.reset(prob);
    mt.reset(prob);
    for (int r = 0; r < 30; ++r) {
        ASSERT_EQ(scalar.iterate(), mt.iterate());
        expectBitwiseEqual(scalar, mt, "threads=3 + rcm");
    }
}

TEST(DibaLayoutTest, ColoredSweepBitwiseInvariant)
{
    const Graph g = scrambledTopology();
    const auto prob = test::npbProblem(kNodes, 171.0, kProblemSeed);

    DibaAllocator id = makeAllocator(g, Layout::identity);
    DibaAllocator rcm = makeAllocator(g, Layout::rcm);
    id.reset(prob);
    rcm.reset(prob);

    Rng rng_a(kSweepSeed);
    Rng rng_b(kSweepSeed);
    for (int s = 0; s < 10; ++s) {
        ASSERT_EQ(id.gossipSweep(rng_a), rcm.gossipSweep(rng_b));
        expectBitwiseEqual(id, rcm, "sweep");
    }
}

TEST(DibaLayoutTest, ChannelSweepBitwiseInvariant)
{
    // The lossy channel keys its fate stream off the edge ids and
    // ORIGINAL endpoints it is handed; if the layout leaked
    // permuted ids into fate(), the drop pattern (and the state)
    // would diverge immediately.
    const Graph g = scrambledTopology();
    const auto prob = test::npbProblem(kNodes, 171.0, kProblemSeed);

    LossyChannel::Config lossy;
    lossy.drop_rate = 0.25;
    DibaAllocator id = makeAllocator(g, Layout::identity);
    DibaAllocator rcm = makeAllocator(g, Layout::rcm);
    id.reset(prob);
    rcm.reset(prob);

    Rng rng_a(kSweepSeed);
    Rng rng_b(kSweepSeed);
    LossyChannel chan_a(lossy, 99);
    LossyChannel chan_b(lossy, 99);
    for (int s = 0; s < 10; ++s) {
        ASSERT_EQ(id.gossipSweep(rng_a, chan_a),
                  rcm.gossipSweep(rng_b, chan_b));
        expectBitwiseEqual(id, rcm, "channel sweep");
    }
    EXPECT_EQ(chan_a.stats().offered, chan_b.stats().offered);
    EXPECT_EQ(chan_a.stats().dropped, chan_b.stats().dropped);
}

TEST(DibaLayoutTest, ChurnAndColoringRepairBitwiseInvariant)
{
    // Fail/join/heal churn under a non-identity layout: the
    // incremental coloring repair, the live-edge swap-erase lists
    // and the recovery budget accounting all run on working ids
    // internally but must stay in lockstep with the identity
    // allocator fed the same original-id operations.
    const Graph g = scrambledTopology();
    const auto prob = test::npbProblem(kNodes, 171.0, kProblemSeed);

    DibaAllocator id = makeAllocator(g, Layout::identity);
    DibaAllocator rcm = makeAllocator(g, Layout::rcm);
    id.reset(prob);
    rcm.reset(prob);

    Rng rng_a(kSweepSeed);
    Rng rng_b(kSweepSeed);
    const auto sweep = [&](int times) {
        for (int s = 0; s < times; ++s)
            ASSERT_EQ(id.gossipSweep(rng_a),
                      rcm.gossipSweep(rng_b));
    };

    sweep(3);
    // Mask a pair of overlay edges (original endpoints).
    const auto e0 = id.overlayEdges()[2];
    const auto e1 = id.overlayEdges()[7];
    for (DibaAllocator *d : {&id, &rcm}) {
        d->setEdgeEnabled(e0.first, e0.second, false);
        d->setEdgeEnabled(e1.first, e1.second, false);
    }
    sweep(3);
    // Crash-fail two servers, sweep, then heal everything.
    for (DibaAllocator *d : {&id, &rcm}) {
        d->failNode(5);
        d->failNode(31);
    }
    EXPECT_EQ(id.numActive(), rcm.numActive());
    EXPECT_FALSE(rcm.isActive(5));
    EXPECT_FALSE(rcm.isActive(31));
    sweep(3);
    for (DibaAllocator *d : {&id, &rcm}) {
        d->joinNode(31);
        d->joinNode(5);
        d->setEdgeEnabled(e0.first, e0.second, true);
        d->setEdgeEnabled(e1.first, e1.second, true);
    }
    sweep(4);
    expectBitwiseEqual(id, rcm, "churn");

    // The repaired incremental coloring must still be an exact
    // proper coloring of the live edge set on both allocators.
    EXPECT_TRUE(id.liveEdgeListExact());
    EXPECT_TRUE(rcm.liveEdgeListExact());
    std::vector<int> covered(id.overlayEdges().size(), 0);
    const EdgeColoring &col = rcm.edgeColoring();
    for (std::size_t c = 0; c < col.numColors(); ++c) {
        std::vector<std::uint8_t> touched(kNodes, 0);
        for (const std::uint32_t eid : col.matching(c)) {
            const auto &[u, v] = rcm.overlayEdges()[eid];
            EXPECT_FALSE(touched[u] || touched[v])
                << "matching " << c << " not vertex-disjoint";
            touched[u] = touched[v] = 1;
            ++covered[eid];
        }
    }
    for (std::size_t eid = 0; eid < covered.size(); ++eid)
        EXPECT_EQ(covered[eid], 1) << "edge " << eid;
}

TEST(DibaLayoutTest, ControlEventsBitwiseInvariant)
{
    // setBudget / setUtility / warmStart cross the original-id
    // boundary too (per-node scatters plus ordered reductions).
    const Graph g = scrambledTopology();
    const auto prob = test::npbProblem(kNodes, 171.0, kProblemSeed);

    DibaAllocator id = makeAllocator(g, Layout::identity);
    DibaAllocator rcm = makeAllocator(g, Layout::bisection);
    id.reset(prob);
    rcm.reset(prob);
    for (int r = 0; r < 10; ++r) {
        id.iterate();
        rcm.iterate();
    }
    const double budget = id.budget();
    id.setBudget(budget * 0.9);
    rcm.setBudget(budget * 0.9);
    expectBitwiseEqual(id, rcm, "setBudget");

    const auto prev = id.result();
    id.warmStart(prev, 40.0);
    rcm.warmStart(prev, 40.0);
    expectBitwiseEqual(id, rcm, "warmStart");
    for (int r = 0; r < 10; ++r) {
        ASSERT_EQ(id.iterate(), rcm.iterate());
        expectBitwiseEqual(id, rcm, "post-warm rounds");
    }
    EXPECT_EQ(id.totalPower(), rcm.totalPower());
}

TEST(DibaLayoutTest, ChunkLocalityClosesTheLoop)
{
    // The whole point of the subsystem: on a scrambled overlay the
    // layout-aware allocator must measure strictly better chunk
    // locality than the identity allocator, through the same
    // chunkLocality() probe the benches gate on.
    const Graph g = scrambledTopology();
    DibaAllocator id = makeAllocator(g, Layout::identity, 4);
    DibaAllocator rcm = makeAllocator(g, Layout::rcm, 4);
    const double loc_id = id.chunkLocality(4);
    const double loc_rcm = rcm.chunkLocality(4);
    EXPECT_GT(loc_rcm, loc_id);
    // automatic can never do worse than identity (it measures).
    DibaAllocator au = makeAllocator(g, Layout::automatic, 4);
    EXPECT_GE(au.chunkLocality(4), loc_id);
}

} // namespace dpc
