/**
 * @file
 * Shared problem builders for the allocator tests.
 */

#ifndef DPC_TESTS_ALLOC_TEST_PROBLEMS_HH
#define DPC_TESTS_ALLOC_TEST_PROBLEMS_HH

#include "alloc/problem.hh"
#include "workload/generator.hh"

namespace dpc {
namespace test {

/** Random NPB/HPCC problem with budget at `watts_per_node` * n. */
inline AllocationProblem
npbProblem(std::size_t n, double watts_per_node, std::uint64_t seed)
{
    return AllocationProblem::Builder()
        .npbCluster(n, seed)
        .budgetPerNode(watts_per_node)
        .build();
}

/** Tiny fixed problem with hand-checkable structure. */
inline AllocationProblem
tinyProblem()
{
    // A compute-bound and a memory-bound server.
    return AllocationProblem::Builder()
        .quadratic(0.4, 0.2, 100.0, 200.0)
        .quadratic(0.9, 0.9, 100.0, 200.0)
        .budget(310.0)
        .build();
}

} // namespace test
} // namespace dpc

#endif // DPC_TESTS_ALLOC_TEST_PROBLEMS_HH
