/**
 * @file
 * Shared problem builders for the allocator tests.
 */

#ifndef DPC_TESTS_ALLOC_TEST_PROBLEMS_HH
#define DPC_TESTS_ALLOC_TEST_PROBLEMS_HH

#include "alloc/problem.hh"
#include "workload/generator.hh"

namespace dpc {
namespace test {

/** Random NPB/HPCC problem with budget at `watts_per_node` * n. */
inline AllocationProblem
npbProblem(std::size_t n, double watts_per_node, std::uint64_t seed)
{
    Rng rng(seed);
    AllocationProblem prob;
    prob.utilities = utilitiesOf(drawNpbAssignment(n, rng));
    prob.budget = watts_per_node * static_cast<double>(n);
    return prob;
}

/** Tiny fixed problem with hand-checkable structure. */
inline AllocationProblem
tinyProblem()
{
    AllocationProblem prob;
    // A compute-bound and a memory-bound server.
    prob.utilities.push_back(std::make_shared<QuadraticUtility>(
        QuadraticUtility::fromShape(0.4, 0.2, 100.0, 200.0)));
    prob.utilities.push_back(std::make_shared<QuadraticUtility>(
        QuadraticUtility::fromShape(0.9, 0.9, 100.0, 200.0)));
    prob.budget = 310.0;
    return prob;
}

} // namespace test
} // namespace dpc

#endif // DPC_TESTS_ALLOC_TEST_PROBLEMS_HH
