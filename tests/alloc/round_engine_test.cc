/**
 * @file
 * Round-engine tests: the serial, single-chunk and multi-chunk
 * engines must produce bitwise-identical trajectories; the
 * devirtualized quadratic SoA path must agree with the generic
 * black-box path; non-quadratic utilities must fall back; and
 * failNode() must prune the live-edge list that async gossip
 * samples from.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "alloc/diba.hh"
#include "graph/topologies.hh"
#include "model/utility.hh"
#include "tests/alloc/test_problems.hh"
#include "util/stats.hh"

namespace dpc {
namespace {

DibaAllocator::Config
engineConfig(std::size_t threads, bool quad_fastpath = true)
{
    DibaAllocator::Config cfg;
    cfg.num_threads = threads;
    cfg.enable_quad_fastpath = quad_fastpath;
    return cfg;
}

/** Run `rounds` synchronized rounds and return (power, estimates,
 * per-round max moves). */
struct Trajectory
{
    std::vector<double> p;
    std::vector<double> e;
    std::vector<double> moves;
};

Trajectory
runRounds(const Graph &g, const AllocationProblem &prob,
          const DibaAllocator::Config &cfg, std::size_t rounds)
{
    DibaAllocator diba(g, cfg);
    diba.reset(prob);
    Trajectory t;
    for (std::size_t r = 0; r < rounds; ++r)
        t.moves.push_back(diba.iterate());
    t.p = diba.power();
    t.e = diba.estimates();
    return t;
}

void
expectBitwiseEqual(const Trajectory &a, const Trajectory &b)
{
    ASSERT_EQ(a.p.size(), b.p.size());
    for (std::size_t i = 0; i < a.p.size(); ++i) {
        EXPECT_EQ(a.p[i], b.p[i]) << "power at node " << i;
        EXPECT_EQ(a.e[i], b.e[i]) << "estimate at node " << i;
    }
    ASSERT_EQ(a.moves.size(), b.moves.size());
    for (std::size_t r = 0; r < a.moves.size(); ++r)
        EXPECT_EQ(a.moves[r], b.moves[r]) << "round " << r;
}

TEST(RoundEngineTest, ThreadCountsAreBitwiseIdenticalOnRing)
{
    const auto prob = test::npbProblem(96, 172.0, 11);
    const Graph g = makeRing(96);
    const auto serial = runRounds(g, prob, engineConfig(0), 500);
    const auto one = runRounds(g, prob, engineConfig(1), 500);
    const auto four = runRounds(g, prob, engineConfig(4), 500);
    expectBitwiseEqual(serial, one);
    expectBitwiseEqual(serial, four);
}

TEST(RoundEngineTest, ThreadCountsAreBitwiseIdenticalOnErdosRenyi)
{
    const auto prob = test::npbProblem(80, 172.0, 29);
    Rng rng(5);
    const Graph g = makeConnectedErdosRenyi(80, 200, rng);
    const auto serial = runRounds(g, prob, engineConfig(0), 500);
    const auto one = runRounds(g, prob, engineConfig(1), 500);
    const auto four = runRounds(g, prob, engineConfig(4), 500);
    expectBitwiseEqual(serial, one);
    expectBitwiseEqual(serial, four);
}

TEST(RoundEngineTest, GenericPathIsAlsoThreadCountInvariant)
{
    // The fallback (finite-difference, virtual-dispatch) path goes
    // through the same chunked engine and must be deterministic
    // too.
    const auto prob = test::npbProblem(64, 172.0, 7);
    const Graph g = makeRing(64);
    const auto serial =
        runRounds(g, prob, engineConfig(0, false), 200);
    const auto four =
        runRounds(g, prob, engineConfig(4, false), 200);
    expectBitwiseEqual(serial, four);
}

TEST(RoundEngineTest, QuadFastPathMatchesGenericPath)
{
    // One round of the SoA path against the black-box path: for a
    // quadratic utility the finite-difference curvature is exact,
    // so the two engines compute the same update up to a couple of
    // ulps of rounding-order difference.
    const auto prob = test::npbProblem(64, 172.0, 13);
    const Graph g = makeRing(64);
    const auto fast = runRounds(g, prob, engineConfig(0, true), 3);
    const auto generic =
        runRounds(g, prob, engineConfig(0, false), 3);
    for (std::size_t i = 0; i < fast.p.size(); ++i) {
        EXPECT_NEAR(fast.p[i], generic.p[i], 1e-12);
        EXPECT_NEAR(fast.e[i], generic.e[i], 1e-12);
    }
}

TEST(RoundEngineTest, QuadFastPathConvergesToTheSameAllocation)
{
    const auto prob = test::npbProblem(48, 172.0, 17);
    DibaAllocator fast(makeRing(48), engineConfig(0, true));
    DibaAllocator generic(makeRing(48), engineConfig(0, false));
    const auto rf = fast.allocate(prob);
    const auto rg = generic.allocate(prob);
    EXPECT_TRUE(fast.quadFastPathActive());
    EXPECT_FALSE(generic.quadFastPathActive());
    EXPECT_NEAR(rf.utility, rg.utility,
                1e-6 * std::fabs(rg.utility));
    for (std::size_t i = 0; i < prob.size(); ++i)
        EXPECT_NEAR(rf.power[i], rg.power[i], 1e-3);
}

TEST(RoundEngineTest, NonQuadraticUtilityDisablesFastPath)
{
    auto prob = test::npbProblem(16, 172.0, 3);
    prob.utilities[5] = std::make_shared<PiecewiseLinearUtility>(
        std::vector<double>{100.0, 150.0, 200.0},
        std::vector<double>{0.2, 0.7, 0.9});
    DibaAllocator diba(makeRing(16), engineConfig(4));
    diba.reset(prob);
    EXPECT_FALSE(diba.quadFastPathActive());
    for (int r = 0; r < 50; ++r)
        diba.iterate();
    EXPECT_LT(diba.totalPower(), prob.budget);
    for (double e : diba.estimates())
        EXPECT_LT(e, 0.0);
}

TEST(RoundEngineTest, SetUtilityRefreshesFastPathState)
{
    auto prob = test::npbProblem(16, 172.0, 3);
    DibaAllocator diba(makeRing(16), engineConfig(0));
    diba.reset(prob);
    EXPECT_TRUE(diba.quadFastPathActive());
    diba.setUtility(2, std::make_shared<PiecewiseLinearUtility>(
                           std::vector<double>{100.0, 200.0},
                           std::vector<double>{0.1, 0.8}));
    EXPECT_FALSE(diba.quadFastPathActive());
    diba.setUtility(2,
                    std::make_shared<QuadraticUtility>(
                        QuadraticUtility::fromShape(0.5, 0.5,
                                                    100.0, 200.0)));
    EXPECT_TRUE(diba.quadFastPathActive());
}

TEST(RoundEngineTest, GossipNeverSamplesEdgesOfFailedNodes)
{
    // Chordal ring so removing several nodes keeps the survivors
    // connected; failNode() prunes the dead edges from the live
    // list, so every gossip tick lands on two active endpoints and
    // the budget invariants keep holding.
    const std::size_t n = 32;
    const auto prob = test::npbProblem(n, 172.0, 19);
    Rng topo_rng(2);
    DibaAllocator diba(makeChordalRing(n, 16, topo_rng),
                       engineConfig(0));
    diba.reset(prob);
    for (int r = 0; r < 20; ++r)
        diba.iterate();

    Rng rng(77);
    for (std::size_t dead : {3u, 4u, 17u}) {
        diba.failNode(dead);
        const std::vector<double> before = diba.power();
        for (int t = 0; t < 400; ++t)
            diba.gossipTick(rng);
        for (std::size_t d : {3u, 4u, 17u}) {
            if (diba.isActive(d))
                continue;
            EXPECT_EQ(diba.power()[d], before[d])
                << "dead node " << d << " moved power";
        }
        EXPECT_LT(diba.totalPower(), diba.budget());
    }
    EXPECT_EQ(diba.numActive(), n - 3);
}

} // namespace
} // namespace dpc
