/**
 * @file
 * Pins the two convergence-aware engine features against their
 * contracts: the active-set (frontier) engine must degenerate to
 * the dense sweep bitwise at threshold zero, and warmStart() must
 * reconverge from a budget step in a small fraction of a cold
 * solve while landing on an allocation of the same quality.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "alloc/diba.hh"
#include "alloc/kkt.hh"
#include "graph/topologies.hh"
#include "tests/alloc/test_problems.hh"
#include "metrics/performance.hh"
#include "util/rng.hh"

using namespace dpc;

namespace {

std::size_t
roundsToConverge(DibaAllocator &d, std::uint64_t seed)
{
    Rng rng(seed);
    std::size_t r = 0;
    while (!d.converged() && r < 200000) {
        d.step(rng);
        ++r;
    }
    return r;
}

} // namespace

TEST(SparseEngineTest, ZeroThresholdIsBitwiseIdenticalToDense)
{
    const std::size_t n = 192;
    const auto prob = test::npbProblem(n, 172.0, 11);
    Rng topo_rng(5);
    const Graph graphs[] = {makeRing(n),
                            makeChordalRing(n, 12, topo_rng)};
    for (const Graph &g : graphs) {
        DibaAllocator::Config dense_cfg; // active_threshold = -1
        DibaAllocator::Config sparse_cfg;
        sparse_cfg.active_threshold = 0.0;
        DibaAllocator dense(g, dense_cfg);
        DibaAllocator sparse(g, sparse_cfg);
        dense.reset(prob);
        sparse.reset(prob);
        ASSERT_TRUE(sparse.sparseEngineActive());
        for (int round = 0; round < 600; ++round) {
            const double md = dense.iterate();
            const double ms = sparse.iterate();
            ASSERT_EQ(md, ms) << "max |dp| diverged at round "
                              << round;
            ASSERT_EQ(dense.power(), sparse.power())
                << "power diverged at round " << round;
            ASSERT_EQ(dense.estimates(), sparse.estimates())
                << "estimates diverged at round " << round;
        }
    }
}

TEST(SparseEngineTest, PositiveThresholdQuiescesTheFrontier)
{
    const std::size_t n = 256;
    const auto prob = test::npbProblem(n, 172.0, 13);
    DibaAllocator::Config cfg;
    cfg.active_threshold = 0.25 * cfg.tolerance;
    DibaAllocator diba(makeRing(n), cfg);
    diba.reset(prob);
    ASSERT_TRUE(diba.sparseEngineActive());
    (void)roundsToConverge(diba, 3);
    // Drain the sub-tolerance residual tail; the frontier must
    // eventually empty and stay empty, at which point a round
    // touches no node at all.
    std::size_t r = 0;
    while (diba.frontierHotCount() > 0 && r < 200000) {
        diba.iterate();
        ++r;
    }
    ASSERT_EQ(diba.frontierHotCount(), 0u)
        << "frontier never drained";
    const auto p_before = diba.power();
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(diba.iterate(), 0.0);
    EXPECT_EQ(p_before, diba.power());
    // A control event reheats it.
    diba.setBudget(diba.problem().budget * 1.01);
    EXPECT_EQ(diba.frontierHotCount(), n);
}

TEST(WarmStartTest, BudgetStepReconvergesInFractionOfColdSolve)
{
    const std::size_t n = 800;
    const auto prob = test::npbProblem(n, 172.0, 23);
    const Graph g = makeRing(n);
    for (const double frac : {-0.20, 0.20}) {
        auto shifted = prob;
        shifted.budget += frac * prob.budget;

        DibaAllocator cold(g, DibaAllocator::Config{});
        cold.reset(shifted);
        const std::size_t cold_rounds = roundsToConverge(cold, 3);
        ASSERT_TRUE(cold.converged());

        DibaAllocator warm(g, DibaAllocator::Config{});
        warm.allocate(prob);
        warm.warmStart(warm.result(), frac * prob.budget);
        const std::size_t warm_rounds = roundsToConverge(warm, 3);
        ASSERT_TRUE(warm.converged());

        EXPECT_LE(warm_rounds, cold_rounds / 4)
            << "budget step " << frac << ": warm " << warm_rounds
            << " rounds vs cold " << cold_rounds;
    }
}

TEST(WarmStartTest, ReconvergedAllocationMatchesColdQuality)
{
    const std::size_t n = 400;
    const auto prob = test::npbProblem(n, 172.0, 31);
    const Graph g = makeRing(n);
    for (const double frac : {-0.20, 0.20}) {
        auto shifted = prob;
        shifted.budget += frac * prob.budget;
        DibaAllocator warm(g, DibaAllocator::Config{});
        warm.allocate(prob);
        warm.warmStart(warm.result(), frac * prob.budget);
        (void)roundsToConverge(warm, 7);
        ASSERT_TRUE(warm.converged());

        // Cap safety and the invariant, exactly as after a cold
        // solve.
        EXPECT_LT(warm.totalPower(), shifted.budget);
        double se = 0.0;
        for (const double e : warm.estimates()) {
            EXPECT_LT(e, 0.0);
            se += e;
        }
        EXPECT_NEAR(se, warm.totalPower() - shifted.budget,
                    1e-6 * shifted.budget);

        // And the utility must be near the centralized optimum of
        // the shifted problem (the same bar the cold solver is
        // held to elsewhere).
        const auto opt = solveKkt(shifted);
        const double uf =
            totalUtility(shifted.utilities, warm.power()) /
            opt.utility;
        EXPECT_GT(uf, 0.985) << "budget step " << frac;
    }
}

TEST(WarmStartTest, ZeroDeltaKeepsTheConvergedAllocation)
{
    const std::size_t n = 200;
    const auto prob = test::npbProblem(n, 172.0, 47);
    DibaAllocator diba(makeRing(n), DibaAllocator::Config{});
    diba.allocate(prob);
    const auto p0 = diba.power();
    const auto e0 = diba.estimates();
    diba.warmStart(diba.result(), 0.0);
    // The state-continuous zero-delta path keeps p and e exactly.
    EXPECT_EQ(p0, diba.power());
    EXPECT_EQ(e0, diba.estimates());
    EXPECT_EQ(diba.iterations(), 0u);
}
