#include <gtest/gtest.h>

#include <cmath>

#include "alloc/diba.hh"
#include "alloc/kkt.hh"
#include "graph/topologies.hh"
#include "metrics/performance.hh"
#include "tests/alloc/test_problems.hh"
#include "util/stats.hh"

namespace dpc {
namespace {

/**
 * A utility of the opposite workload class: saturating nodes get a
 * compute-hungry curve and vice versa, guaranteeing the workload
 * change actually shifts the node's power demand.
 */
UtilityPtr
contrastingUtility(const UtilityFunction &u)
{
    const bool saturating =
        u.value(u.minPower()) / u.peakValue() > 0.55;
    return std::make_shared<QuadraticUtility>(
        saturating
            ? QuadraticUtility::fromShape(0.18, 0.03, u.minPower(),
                                          u.maxPower())
            : QuadraticUtility::fromShape(0.88, 1.0, u.minPower(),
                                          u.maxPower()));
}

/** Check the conservation invariant sum(e) == sum(p) - P. */
void
expectInvariant(const DibaAllocator &diba)
{
    const double se = sum(diba.estimates());
    const double sp = diba.totalPower();
    EXPECT_NEAR(se, sp - diba.budget(), 1e-6 * diba.budget());
}

/** Same invariant restricted to surviving nodes. */
void
expectInvariantOverActive(const DibaAllocator &diba)
{
    double se = 0.0;
    for (std::size_t i = 0; i < diba.estimates().size(); ++i)
        if (diba.isActive(i))
            se += diba.estimates()[i];
    EXPECT_NEAR(se, diba.totalPower() - diba.budget(),
                1e-6 * diba.budget());
}

TEST(DibaTest, RequiresConnectedTopology)
{
    Graph g(4);
    g.addEdge(0, 1);
    EXPECT_DEATH(DibaAllocator diba(g), "connected");
}

TEST(DibaTest, ResetEstablishesInvariants)
{
    const auto prob = test::npbProblem(16, 170.0, 1);
    DibaAllocator diba(makeRing(16));
    diba.reset(prob);
    expectInvariant(diba);
    for (double e : diba.estimates())
        EXPECT_LT(e, 0.0);
    EXPECT_LT(diba.totalPower(), prob.budget);
}

TEST(DibaTest, BudgetNeverViolatedDuringIterations)
{
    const auto prob = test::npbProblem(32, 168.0, 2);
    DibaAllocator diba(makeRing(32));
    diba.reset(prob);
    for (int it = 0; it < 500; ++it) {
        diba.iterate();
        EXPECT_LT(diba.totalPower(), prob.budget)
            << "violated at iteration " << it;
    }
    expectInvariant(diba);
}

TEST(DibaTest, ConvergesTo99PercentOfOracleOnRing)
{
    const auto prob = test::npbProblem(100, 170.0, 3);
    const auto opt = solveKkt(prob);
    DibaAllocator diba(makeRing(100));
    diba.reset(prob);
    // The N=100 ring is the slowest-mixing overlay in the suite
    // (Fig. 4.10); give it its full convergence horizon.
    for (int it = 0; it < 8000; ++it)
        diba.iterate();
    const double u = totalUtility(prob.utilities, diba.power());
    EXPECT_TRUE(withinFractionOfOptimal(u, opt.utility, 0.99))
        << "DiBA " << u << " vs optimal " << opt.utility;
}

TEST(DibaTest, AllocateInterfaceConverges)
{
    const auto prob = test::npbProblem(50, 172.0, 4);
    DibaAllocator diba(makeRing(50));
    const auto res = diba.allocate(prob);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(res.totalPower(), prob.budget);
    const auto opt = solveKkt(prob);
    EXPECT_TRUE(
        withinFractionOfOptimal(res.utility, opt.utility, 0.985));
}

TEST(DibaTest, BoxesAlwaysRespected)
{
    const auto prob = test::npbProblem(40, 150.0, 5);
    DibaAllocator diba(makeRing(40));
    diba.reset(prob);
    for (int it = 0; it < 300; ++it) {
        diba.iterate();
        const auto &p = diba.power();
        for (std::size_t i = 0; i < p.size(); ++i) {
            EXPECT_GE(p[i],
                      prob.utilities[i]->minPower() - 1e-9);
            EXPECT_LE(p[i],
                      prob.utilities[i]->maxPower() + 1e-9);
        }
    }
}

TEST(DibaTest, BudgetDropShedsImmediately)
{
    const auto prob = test::npbProblem(64, 185.0, 6);
    DibaAllocator diba(makeRing(64));
    diba.reset(prob);
    for (int it = 0; it < 1000; ++it)
        diba.iterate();
    // Drop the budget by ~10%; the announcement plus local shedding
    // must restore feasibility without any further iterations.
    const double new_budget = prob.budget * 0.9;
    diba.setBudget(new_budget);
    EXPECT_LE(diba.totalPower(), new_budget);
    expectInvariant(diba);
    // And the algorithm keeps the hard guarantee afterwards.
    for (int it = 0; it < 400; ++it) {
        diba.iterate();
        EXPECT_LT(diba.totalPower(), new_budget);
    }
}

TEST(DibaTest, BudgetRaiseIsExploited)
{
    const auto prob = test::npbProblem(64, 160.0, 7);
    DibaAllocator diba(makeRing(64));
    diba.reset(prob);
    for (int it = 0; it < 1000; ++it)
        diba.iterate();
    const double before = diba.totalPower();
    diba.setBudget(prob.budget * 1.1);
    for (int it = 0; it < 1500; ++it)
        diba.iterate();
    EXPECT_GT(diba.totalPower(), before + 1.0);
    EXPECT_LT(diba.totalPower(), prob.budget * 1.1);
    expectInvariant(diba);
}

TEST(DibaTest, UtilityChangeKeepsInvariant)
{
    const auto prob = test::npbProblem(32, 170.0, 8);
    DibaAllocator diba(makeRing(32));
    diba.reset(prob);
    for (int it = 0; it < 200; ++it)
        diba.iterate();
    diba.setUtility(5, std::make_shared<QuadraticUtility>(
                           QuadraticUtility::fromShape(
                               0.9, 0.95, 120.0, 220.0)));
    expectInvariant(diba);
    for (int it = 0; it < 200; ++it)
        diba.iterate();
    EXPECT_LT(diba.totalPower(), prob.budget);
}

TEST(DibaTest, PerturbationDecaysWithRingDistance)
{
    // Fig. 4.9: after a single node's utility changes, the power
    // adjustment is largest near the perturbed node.
    const std::size_t n = 100;
    const auto prob = test::npbProblem(n, 172.0, 9);
    DibaAllocator diba(makeRing(n));
    diba.reset(prob);
    for (int it = 0; it < 4000; ++it)
        diba.iterate();
    const auto before = diba.power();
    diba.setUtility(50, contrastingUtility(*prob.utilities[50]));
    for (int it = 0; it < 4000; ++it)
        diba.iterate();
    const auto after = diba.power();
    std::vector<double> near, far;
    for (std::size_t i = 0; i < n; ++i) {
        const auto dist = std::min<std::size_t>(
            i > 50 ? i - 50 : 50 - i, n - (i > 50 ? i - 50 : 50 - i));
        const double delta = std::fabs(after[i] - before[i]);
        if (dist >= 1 && dist <= 5)
            near.push_back(delta);
        else if (dist >= 30)
            far.push_back(delta);
    }
    // The released/claimed power is absorbed mostly by the
    // perturbed node's neighbourhood (box-clamped servers anywhere
    // correctly do not move, so compare mean absorption).
    EXPECT_GT(mean(near), 1.0);
    EXPECT_GT(mean(near), 2.0 * mean(far));
}

TEST(DibaTest, MessagesPerRoundMatchesTopology)
{
    DibaAllocator ring(makeRing(10));
    EXPECT_EQ(ring.messagesPerRound(), 20u);
    DibaAllocator full(makeComplete(5));
    EXPECT_EQ(full.messagesPerRound(), 20u);
}

TEST(DibaAsyncTest, GossipTickPreservesInvariants)
{
    const auto prob = test::npbProblem(32, 170.0, 31);
    DibaAllocator diba(makeRing(32));
    diba.reset(prob);
    Rng rng(1);
    for (int t = 0; t < 2000; ++t) {
        diba.gossipTick(rng);
        EXPECT_LT(diba.totalPower(), prob.budget);
    }
    expectInvariant(diba);
    for (double e : diba.estimates())
        EXPECT_LT(e, 0.0);
}

TEST(DibaAsyncTest, GossipConvergesNearOracle)
{
    const std::size_t n = 48;
    const auto prob = test::npbProblem(n, 170.0, 32);
    const auto opt = solveKkt(prob);
    Rng topo_rng(2);
    DibaAllocator diba(makeChordalRing(n, 12, topo_rng));
    diba.reset(prob);
    Rng rng(3);
    // ~2500 synchronous-round equivalents of asynchronous work.
    for (std::size_t t = 0; t < 2500 * n; ++t)
        diba.gossipTick(rng);
    const double u = totalUtility(prob.utilities, diba.power());
    EXPECT_TRUE(withinFractionOfOptimal(u, opt.utility, 0.98))
        << u << " vs " << opt.utility;
}

TEST(DibaFailureTest, FailedNodeReleasesItsPower)
{
    const std::size_t n = 32;
    const auto prob = test::npbProblem(n, 170.0, 33);
    Rng topo_rng(4);
    DibaAllocator diba(makeChordalRing(n, 8, topo_rng));
    diba.reset(prob);
    for (int it = 0; it < 1500; ++it)
        diba.iterate();
    const double before = diba.totalPower();
    const double p_failed = diba.power()[10];
    diba.failNode(10);
    EXPECT_FALSE(diba.isActive(10));
    EXPECT_EQ(diba.numActive(), n - 1);
    // The failed node's draw is gone instantly.
    EXPECT_NEAR(diba.totalPower(), before - p_failed, 1e-9);
    // Its released power is reusable: survivors climb while the
    // budget guarantee holds throughout.
    for (int it = 0; it < 2000; ++it) {
        diba.iterate();
        EXPECT_LT(diba.totalPower(), prob.budget);
    }
    EXPECT_GT(diba.totalPower(), before - p_failed + 1.0);
}

TEST(DibaFailureTest, SurvivorsReoptimizeNearReducedOracle)
{
    const std::size_t n = 48;
    const auto prob = test::npbProblem(n, 168.0, 34);
    Rng topo_rng(5);
    DibaAllocator diba(makeChordalRing(n, 16, topo_rng));
    diba.reset(prob);
    for (int it = 0; it < 1500; ++it)
        diba.iterate();
    diba.failNode(7);
    diba.failNode(23);
    for (int it = 0; it < 4000; ++it)
        diba.iterate();

    // Oracle over the survivors at the full budget.
    AllocationProblem reduced;
    std::vector<double> live_power;
    for (std::size_t i = 0; i < n; ++i) {
        if (diba.isActive(i)) {
            reduced.utilities.push_back(prob.utilities[i]);
            live_power.push_back(diba.power()[i]);
        }
    }
    reduced.budget = prob.budget;
    const auto opt = solveKkt(reduced);
    const double u = totalUtility(reduced.utilities, live_power);
    EXPECT_TRUE(withinFractionOfOptimal(u, opt.utility, 0.98))
        << u << " vs " << opt.utility;
}

TEST(DibaFailureTest, DisconnectionKeepsBudgetGuarantee)
{
    const auto prob = test::npbProblem(8, 170.0, 35);
    DibaAllocator diba(makeRing(8)); // no chords: ring can split
    diba.reset(prob);
    for (int it = 0; it < 500; ++it)
        diba.iterate();
    diba.failNode(2);
    diba.failNode(4); // splits the survivors into two arcs
    for (int it = 0; it < 500; ++it) {
        diba.iterate();
        EXPECT_LT(diba.totalPower(), prob.budget);
    }
    // Per-partition conservation still implies the global one.
    double se = 0.0;
    for (std::size_t i = 0; i < 8; ++i)
        if (diba.isActive(i))
            se += diba.estimates()[i];
    EXPECT_NEAR(se, diba.totalPower() - diba.budget(),
                1e-6 * diba.budget());
}

TEST(DibaFailureTest, GossipSkipsDeadNeighbours)
{
    const auto prob = test::npbProblem(16, 170.0, 36);
    Rng topo_rng(6);
    DibaAllocator diba(makeChordalRing(16, 6, topo_rng));
    diba.reset(prob);
    diba.failNode(3);
    Rng rng(7);
    const auto p3 = diba.power()[3];
    for (int t = 0; t < 500; ++t)
        diba.gossipTick(rng);
    // The failed node never moves again.
    EXPECT_EQ(diba.power()[3], p3);
    expectInvariantOverActive(diba);
}

/** Topology sweep: DiBA converges on any connected overlay. */
class DibaTopologySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DibaTopologySweep, ConvergesNearOracle)
{
    const std::size_t n = 48;
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    Graph topo;
    switch (GetParam() % 4) {
      case 0:
        topo = makeRing(n);
        break;
      case 1:
        topo = makeChordalRing(n, 10, rng);
        break;
      case 2:
        topo = makeConnectedErdosRenyi(n, 120, rng);
        break;
      default:
        topo = makeComplete(n);
        break;
    }
    const auto prob =
        test::npbProblem(n, 168.0,
                         static_cast<std::uint64_t>(GetParam()));
    const auto opt = solveKkt(prob);
    DibaAllocator diba(std::move(topo));
    diba.reset(prob);
    for (int it = 0; it < 2500; ++it)
        diba.iterate();
    const double u = totalUtility(prob.utilities, diba.power());
    EXPECT_TRUE(withinFractionOfOptimal(u, opt.utility, 0.985));
    EXPECT_LT(diba.totalPower(), prob.budget);
}

INSTANTIATE_TEST_SUITE_P(Topologies, DibaTopologySweep,
                         ::testing::Range(0, 8));

/** Budget sweep mirrors Fig. 4.3's x-axis. */
class DibaBudgetSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(DibaBudgetSweep, FeasibleAndNearOptimal)
{
    const auto prob = test::npbProblem(64, GetParam(), 21);
    const auto opt = solveKkt(prob);
    DibaAllocator diba(makeRing(64));
    diba.reset(prob);
    for (int it = 0; it < 2500; ++it)
        diba.iterate();
    EXPECT_LT(diba.totalPower(), prob.budget);
    const double u = totalUtility(prob.utilities, diba.power());
    EXPECT_TRUE(withinFractionOfOptimal(u, opt.utility, 0.98))
        << "budget/node " << GetParam() << ": " << u << " vs "
        << opt.utility;
}

INSTANTIATE_TEST_SUITE_P(Budgets, DibaBudgetSweep,
                         ::testing::Values(166.0, 170.0, 174.0,
                                           178.0, 182.0, 186.0));

} // namespace
} // namespace dpc
