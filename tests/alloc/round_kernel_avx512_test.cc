/**
 * @file
 * Pins the AVX-512F block-step kernel bitwise against its scalar
 * twin, exactly as round_kernel_avx2_test.cc pins the 4-wide path.
 *
 * The library only dispatches to stepBlockQuadAvx512 under the
 * DPC_AVX512 build option, but the claim is testable in any build:
 * this translation unit is compiled with -mavx512f explicitly (see
 * tests/CMakeLists.txt) so both bodies of round_kernel.hh exist
 * here, and each test drives them over the same streams and
 * requires exact equality of every output bit.  A runtime
 * __builtin_cpu_supports guard skips the suite on machines that
 * compile AVX-512 but cannot execute it -- this is also what makes
 * the suite safe as a CI compile smoke on non-AVX-512 hosts.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "alloc/round_kernel.hh"
#include "util/rng.hh"

using namespace dpc;

#if !defined(__AVX512F__)
#error "this test must be compiled with -mavx512f"
#endif

namespace {

bool
avx512Available()
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_cpu_supports("avx512f") != 0;
#else
    return false;
#endif
}

struct Streams
{
    std::vector<double> p, e, eta, b, c, lo, hi;

    explicit Streams(std::size_t m) :
        p(m), e(m), eta(m), b(m), c(m), lo(m), hi(m)
    {
    }
};

/**
 * Streams spanning every kernel regime: interior barrier steps,
 * box-clamped nodes, max_move-clamped gradients, lanes pinned at
 * the barrier floor, eta at both anneal bounds, and (when
 * `with_shed`) positive estimates that trigger the emergency-shed
 * branch.
 */
Streams
randomStreams(std::size_t m, std::uint64_t seed, bool with_shed)
{
    Rng rng(seed);
    Streams s(m);
    const RoundKernelParams k{};
    for (std::size_t i = 0; i < m; ++i) {
        s.lo[i] = 80.0 + 40.0 * rng.uniform();
        s.hi[i] = s.lo[i] + 60.0 + 100.0 * rng.uniform();
        s.p[i] = s.lo[i] + (s.hi[i] - s.lo[i]) * rng.uniform();
        // Mostly healthy negative slack; a few lanes hug the
        // barrier floor, and optionally some violate it outright.
        const double u = rng.uniform();
        if (with_shed && u < 0.15)
            s.e[i] = 0.5 * rng.uniform();
        else if (u < 0.3)
            s.e[i] = -1e-7 * (1.0 + rng.uniform());
        else
            s.e[i] = -(0.01 + 30.0 * rng.uniform());
        s.eta[i] = k.eta_floor +
                   (k.eta_initial - k.eta_floor) * rng.uniform();
        // Concave quadratics with a wide curvature spread, plus
        // the degenerate linear case.
        s.c[i] = rng.uniform() < 0.05
                     ? 0.0
                     : -(1e-4 + 0.05 * rng.uniform());
        s.b[i] = 0.5 + 2.0 * rng.uniform();
    }
    return s;
}

void
expectBitwiseEqual(const Streams &a, const Streams &c,
                   const char *what)
{
    ASSERT_EQ(a.p.size(), c.p.size());
    for (std::size_t i = 0; i < a.p.size(); ++i) {
        EXPECT_EQ(a.p[i], c.p[i]) << what << " p[" << i << "]";
        EXPECT_EQ(a.e[i], c.e[i]) << what << " e[" << i << "]";
        EXPECT_EQ(a.eta[i], c.eta[i])
            << what << " eta[" << i << "]";
    }
}

} // namespace

TEST(RoundKernelAvx512Test, SingleStepIsBitwiseIdentical)
{
    if (!avx512Available())
        GTEST_SKIP() << "host cannot execute AVX-512F";
    const RoundKernelParams k{};
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        for (const bool with_shed : {false, true}) {
            const Streams base =
                randomStreams(1024, seed, with_shed);
            Streams sc = base, vx = base;
            const double m_sc = stepBlockQuadScalar(
                1024, sc.p.data(), sc.e.data(), sc.eta.data(),
                sc.b.data(), sc.c.data(), sc.lo.data(),
                sc.hi.data(), k);
            const double m_vx = stepBlockQuadAvx512(
                1024, vx.p.data(), vx.e.data(), vx.eta.data(),
                vx.b.data(), vx.c.data(), vx.lo.data(),
                vx.hi.data(), k);
            EXPECT_EQ(m_sc, m_vx) << "max_dp, seed " << seed;
            expectBitwiseEqual(sc, vx, "single step");
        }
    }
}

TEST(RoundKernelAvx512Test, OddLengthsExerciseTheScalarTail)
{
    if (!avx512Available())
        GTEST_SKIP() << "host cannot execute AVX-512F";
    const RoundKernelParams k{};
    // Lengths below, at, and just past the 8-lane width, plus odd
    // block sizes that leave a 1..7 element scalar tail.
    for (const std::size_t m :
         {1u, 2u, 3u, 5u, 7u, 8u, 9u, 15u, 63u, 127u}) {
        const Streams base = randomStreams(m, 99 + m, true);
        Streams sc = base, vx = base;
        const double m_sc = stepBlockQuadScalar(
            m, sc.p.data(), sc.e.data(), sc.eta.data(),
            sc.b.data(), sc.c.data(), sc.lo.data(), sc.hi.data(),
            k);
        const double m_vx = stepBlockQuadAvx512(
            m, vx.p.data(), vx.e.data(), vx.eta.data(),
            vx.b.data(), vx.c.data(), vx.lo.data(), vx.hi.data(),
            k);
        EXPECT_EQ(m_sc, m_vx) << "max_dp, m=" << m;
        expectBitwiseEqual(sc, vx, "odd length");
    }
}

TEST(RoundKernelAvx512Test, StaysIdenticalOverManyChainedRounds)
{
    if (!avx512Available())
        GTEST_SKIP() << "host cannot execute AVX-512F";
    const RoundKernelParams k{};
    const std::size_t m = 261; // 32 full lanes + a 5-element tail
    const Streams base = randomStreams(m, 7, true);
    Streams sc = base, vx = base;
    for (int round = 0; round < 400; ++round) {
        const double m_sc = stepBlockQuadScalar(
            m, sc.p.data(), sc.e.data(), sc.eta.data(),
            sc.b.data(), sc.c.data(), sc.lo.data(), sc.hi.data(),
            k);
        const double m_vx = stepBlockQuadAvx512(
            m, vx.p.data(), vx.e.data(), vx.eta.data(),
            vx.b.data(), vx.c.data(), vx.lo.data(), vx.hi.data(),
            k);
        ASSERT_EQ(m_sc, m_vx) << "max_dp diverged at round "
                              << round;
        ASSERT_EQ(0, std::memcmp(sc.p.data(), vx.p.data(),
                                 m * sizeof(double)))
            << "p diverged at round " << round;
        ASSERT_EQ(0, std::memcmp(sc.e.data(), vx.e.data(),
                                 m * sizeof(double)))
            << "e diverged at round " << round;
        ASSERT_EQ(0, std::memcmp(sc.eta.data(), vx.eta.data(),
                                 m * sizeof(double)))
            << "eta diverged at round " << round;
    }
}
