#include <gtest/gtest.h>

#include "alloc/kkt.hh"
#include "metrics/performance.hh"
#include "tests/alloc/test_problems.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace dpc {
namespace {

TEST(KktTest, SlackBudgetGivesEveryonePeakPower)
{
    auto prob = test::tinyProblem();
    prob.budget = 1000.0; // far more than 2 * 200
    KktAllocator kkt;
    const auto res = kkt.allocate(prob);
    EXPECT_DOUBLE_EQ(res.power[0], 200.0);
    EXPECT_DOUBLE_EQ(res.power[1], 200.0);
    EXPECT_EQ(kkt.lastLambda(), 0.0);
}

TEST(KktTest, TightBudgetMeetsConstraint)
{
    const auto prob = test::tinyProblem();
    const auto res = solveKkt(prob);
    EXPECT_NEAR(res.totalPower(), prob.budget, 1e-6);
    // Compute-bound server 0 deserves more power than the
    // saturating server 1.
    EXPECT_GT(res.power[0], res.power[1]);
}

TEST(KktTest, EqualShadowPriceAtOptimum)
{
    const auto prob = test::npbProblem(40, 170.0, 3);
    KktAllocator kkt;
    const auto res = kkt.allocate(prob);
    const double lambda = kkt.lastLambda();
    ASSERT_GT(lambda, 0.0);
    for (std::size_t i = 0; i < prob.size(); ++i) {
        const auto &u = *prob.utilities[i];
        const double p = res.power[i];
        if (p > u.minPower() + 1e-6 && p < u.maxPower() - 1e-6) {
            // Interior servers share the price.
            EXPECT_NEAR(u.derivative(p), lambda, 1e-5);
        } else if (p <= u.minPower() + 1e-6) {
            EXPECT_LE(u.derivative(p), lambda + 1e-5);
        } else {
            EXPECT_GE(u.derivative(p), lambda - 1e-5);
        }
    }
}

TEST(KktTest, BeatsRandomFeasiblePoints)
{
    const auto prob = test::npbProblem(30, 165.0, 7);
    const auto res = solveKkt(prob);
    Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        // Random feasible point: random in boxes, scaled back.
        std::vector<double> p(prob.size());
        for (std::size_t i = 0; i < prob.size(); ++i) {
            const auto &u = *prob.utilities[i];
            p[i] = rng.uniform(u.minPower(), u.maxPower());
        }
        const double total = sum(p);
        if (total > prob.budget) {
            // Pull back toward minimums proportionally.
            const double need = total - prob.budget;
            double slack = 0.0;
            for (std::size_t i = 0; i < p.size(); ++i)
                slack += p[i] - prob.utilities[i]->minPower();
            for (std::size_t i = 0; i < p.size(); ++i) {
                p[i] -= need *
                        (p[i] - prob.utilities[i]->minPower()) /
                        slack;
            }
        }
        const double u_rand = totalUtility(prob.utilities, p);
        EXPECT_LE(u_rand, res.utility + 1e-9);
    }
}

/** Budget sweep: monotone utility, binding constraint when tight. */
class KktBudgetSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(KktBudgetSweep, FeasibleAndMonotone)
{
    const auto prob = test::npbProblem(60, GetParam(), 11);
    const auto res = solveKkt(prob);
    EXPECT_LE(res.totalPower(), prob.budget + 1e-6);
    for (std::size_t i = 0; i < prob.size(); ++i) {
        EXPECT_GE(res.power[i],
                  prob.utilities[i]->minPower() - 1e-9);
        EXPECT_LE(res.power[i],
                  prob.utilities[i]->maxPower() + 1e-9);
    }
    // Utility grows with the budget.
    auto looser = prob;
    looser.budget += 500.0;
    const auto res2 = solveKkt(looser);
    EXPECT_GE(res2.utility, res.utility - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Budgets, KktBudgetSweep,
                         ::testing::Values(140.0, 155.0, 166.0,
                                           174.0, 186.0, 210.0));

} // namespace
} // namespace dpc
