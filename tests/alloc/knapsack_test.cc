#include <gtest/gtest.h>

#include <cmath>

#include "alloc/knapsack.hh"
#include "util/rng.hh"

namespace dpc {
namespace {

TEST(CapGridTest, CapIndexing)
{
    CapGrid grid; // 130..165 step 5, 8 levels
    EXPECT_DOUBLE_EQ(grid.capAt(0), 130.0);
    EXPECT_DOUBLE_EQ(grid.capAt(7), 165.0);
    EXPECT_DOUBLE_EQ(grid.maxCap(), 165.0);
    EXPECT_DEATH(grid.capAt(8), "out of range");
}

/** Exhaustive reference for small instances. */
double
bruteForceBest(const std::vector<std::vector<double>> &values,
               const CapGrid &grid, double budget)
{
    const std::size_t n = values.size();
    double best = -1e300;
    std::vector<std::size_t> pick(n, 0);
    while (true) {
        double power = 0.0;
        double logv = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            power += grid.capAt(pick[i]);
            logv += std::log(values[i][pick[i]]);
        }
        if (power <= budget)
            best = std::max(best, logv);
        // Odometer increment.
        std::size_t i = 0;
        while (i < n && ++pick[i] == grid.levels) {
            pick[i] = 0;
            ++i;
        }
        if (i == n)
            break;
    }
    return best;
}

TEST(KnapsackTest, MatchesBruteForceOnRandomInstances)
{
    Rng rng(7);
    CapGrid grid;
    grid.levels = 4; // keep 4^n enumerable
    KnapsackBudgeter budgeter(grid);
    for (int trial = 0; trial < 25; ++trial) {
        const std::size_t n = 2 + rng.index(5);
        std::vector<std::vector<double>> values(
            n, std::vector<double>(grid.levels));
        for (auto &row : values) {
            double v = rng.uniform(0.3, 0.8);
            for (auto &cell : row) {
                cell = v;
                v += rng.uniform(0.0, 0.2); // non-decreasing
            }
        }
        const double budget =
            grid.p0 * static_cast<double>(n) +
            rng.uniform(0.0, grid.increment *
                                 static_cast<double>(
                                     (grid.levels - 1) * n));
        const auto res = budgeter.allocate(values, budget);
        const double ref = bruteForceBest(values, grid, budget);
        EXPECT_NEAR(res.log_value, ref, 1e-9) << "trial " << trial;
        EXPECT_LE(res.total_power, budget + 1e-9);
    }
}

TEST(KnapsackTest, FullBudgetPicksTopCaps)
{
    CapGrid grid;
    KnapsackBudgeter budgeter(grid);
    std::vector<std::vector<double>> values(
        5, std::vector<double>(grid.levels));
    for (auto &row : values)
        for (std::size_t j = 0; j < grid.levels; ++j)
            row[j] = 1.0 + 0.1 * static_cast<double>(j);
    const auto res = budgeter.allocate(values, 5 * 165.0);
    for (auto c : res.choice)
        EXPECT_EQ(c, grid.levels - 1);
}

TEST(KnapsackTest, FloorBudgetPicksBottomCaps)
{
    CapGrid grid;
    KnapsackBudgeter budgeter(grid);
    std::vector<std::vector<double>> values(
        4, std::vector<double>(grid.levels, 1.0));
    for (auto &row : values)
        for (std::size_t j = 0; j < grid.levels; ++j)
            row[j] += 0.05 * static_cast<double>(j);
    const auto res = budgeter.allocate(values, 4 * 130.0 + 2.0);
    for (auto c : res.choice)
        EXPECT_EQ(c, 0u);
}

TEST(KnapsackTest, PrefersSteeperServer)
{
    CapGrid grid;
    grid.levels = 2;
    KnapsackBudgeter budgeter(grid);
    // One increment available; server 1 gains more (in ratio).
    std::vector<std::vector<double>> values{
        {1.0, 1.02},
        {1.0, 1.50},
    };
    const auto res = budgeter.allocate(values, 2 * 130.0 + 5.0);
    EXPECT_EQ(res.choice[0], 0u);
    EXPECT_EQ(res.choice[1], 1u);
}

TEST(KnapsackTest, RejectsBadInputs)
{
    CapGrid grid;
    KnapsackBudgeter budgeter(grid);
    std::vector<std::vector<double>> values(
        2, std::vector<double>(grid.levels, 1.0));
    EXPECT_DEATH(budgeter.allocate(values, 100.0), "floor");
    values[0][0] = 0.0;
    EXPECT_DEATH(budgeter.allocate(values, 400.0), "positive");
    values[0] = {1.0};
    EXPECT_DEATH(budgeter.allocate(values, 400.0), "width");
}

TEST(KnapsackTest, MaximizesGeomeanNotSum)
{
    // Product objective: lifting the weakest server from 0.1 to 0.2
    // (x2) beats lifting a strong one from 1.0 to 1.5 (x1.5), even
    // though the sum objective prefers the latter.
    CapGrid grid;
    grid.levels = 2;
    KnapsackBudgeter budgeter(grid);
    std::vector<std::vector<double>> values{
        {0.1, 0.2},
        {1.0, 1.5},
    };
    const auto res = budgeter.allocate(values, 2 * 130.0 + 5.0);
    EXPECT_EQ(res.choice[0], 1u);
    EXPECT_EQ(res.choice[1], 0u);
}

} // namespace
} // namespace dpc
