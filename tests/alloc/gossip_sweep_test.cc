#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "alloc/diba.hh"
#include "alloc/kkt.hh"
#include "fault/invariant_checker.hh"
#include "fault/lossy_channel.hh"
#include "graph/topologies.hh"
#include "metrics/performance.hh"
#include "tests/alloc/test_problems.hh"
#include "util/rng.hh"

namespace dpc {
namespace {

constexpr std::size_t kNodes = 64;
constexpr std::uint64_t kProblemSeed = 41;
constexpr std::uint64_t kTopoSeed = 9;
constexpr std::uint64_t kSweepSeed = 1234;

Graph
testTopology()
{
    Rng rng(kTopoSeed);
    return makeChordalRing(kNodes, kNodes / 4, rng);
}

DibaAllocator
makeAllocator(const Graph &g, std::size_t threads = 0,
              bool numa = false)
{
    DibaAllocator::Config cfg;
    cfg.num_threads = threads;
    cfg.numa_interleave = numa;
    return DibaAllocator(g, cfg);
}

/**
 * The exact schedule one gossipSweep(rng) executes: the non-empty
 * color classes in ascending order, shuffled with the sweep's one
 * rng.shuffle draw.  Replaying this schedule through
 * gossipTickPair must reproduce the batched state bitwise.
 */
std::vector<std::uint32_t>
sweepSchedule(DibaAllocator &diba, Rng &rng)
{
    std::vector<std::uint32_t> colors;
    const EdgeColoring &col = diba.edgeColoring();
    for (std::uint32_t c = 0;
         c < static_cast<std::uint32_t>(col.numColors()); ++c)
        if (!col.matching(c).empty())
            colors.push_back(c);
    rng.shuffle(colors);
    return colors;
}

void
expectBitwiseEqual(const DibaAllocator &a, const DibaAllocator &b,
                   const char *what)
{
    ASSERT_EQ(a.power().size(), b.power().size());
    for (std::size_t i = 0; i < a.power().size(); ++i) {
        ASSERT_EQ(a.power()[i], b.power()[i])
            << what << ": power diverges at node " << i;
        ASSERT_EQ(a.estimates()[i], b.estimates()[i])
            << what << ": estimate diverges at node " << i;
    }
}

TEST(GossipSweepTest, BitwiseEqualsScalarReplayOfItsSchedule)
{
    const Graph g = testTopology();
    const auto prob = test::npbProblem(kNodes, 171.0, kProblemSeed);

    DibaAllocator batched = makeAllocator(g);
    DibaAllocator replay = makeAllocator(g);
    batched.reset(prob);
    replay.reset(prob);

    Rng rng_a(kSweepSeed);
    Rng rng_b(kSweepSeed);
    for (int s = 0; s < 8; ++s) {
        batched.gossipSweep(rng_a);
        for (const std::uint32_t c : sweepSchedule(replay, rng_b))
            for (const std::uint32_t id :
                 replay.edgeColoring().matching(c)) {
                const auto &[u, v] = replay.overlayEdges()[id];
                replay.gossipTickPair(u, v);
            }
        expectBitwiseEqual(batched, replay, "sweep");
    }
}

TEST(GossipSweepTest, ChannelSweepBitwiseEqualsScalarReplay)
{
    const Graph g = testTopology();
    const auto prob = test::npbProblem(kNodes, 171.0, kProblemSeed);

    LossyChannel::Config lossy;
    lossy.drop_rate = 0.2;
    DibaAllocator batched = makeAllocator(g);
    DibaAllocator replay = makeAllocator(g);
    batched.reset(prob);
    replay.reset(prob);

    Rng rng_a(kSweepSeed);
    Rng rng_b(kSweepSeed);
    LossyChannel chan_a(lossy, 77);
    LossyChannel chan_b(lossy, 77);
    for (int s = 0; s < 8; ++s) {
        batched.gossipSweep(rng_a, chan_a);
        // Fates are drawn serially in schedule order, so a replay
        // with an identically seeded channel sees the same drops.
        for (const std::uint32_t c : sweepSchedule(replay, rng_b))
            for (const std::uint32_t id :
                 replay.edgeColoring().matching(c)) {
                const auto &[u, v] = replay.overlayEdges()[id];
                replay.gossipTickPair(u, v, chan_b);
            }
        expectBitwiseEqual(batched, replay, "channel sweep");
    }
    EXPECT_EQ(chan_a.stats().offered, chan_b.stats().offered);
    EXPECT_EQ(chan_a.stats().dropped, chan_b.stats().dropped);
}

TEST(GossipSweepTest, ThreadCountAndNumaInvariance)
{
    const Graph g = testTopology();
    const auto prob = test::npbProblem(kNodes, 171.0, kProblemSeed);

    DibaAllocator ref = makeAllocator(g, 0);
    ref.reset(prob);
    Rng rng_ref(kSweepSeed);
    for (int s = 0; s < 6; ++s)
        ref.gossipSweep(rng_ref);

    for (const std::size_t threads : {2u, 5u}) {
        for (const bool numa : {false, true}) {
            DibaAllocator mt = makeAllocator(g, threads, numa);
            mt.reset(prob);
            Rng rng(kSweepSeed);
            for (int s = 0; s < 6; ++s)
                mt.gossipSweep(rng);
            expectBitwiseEqual(ref, mt, "threaded sweep");
        }
    }

    // Run-twice determinism: a reset + reseeded engine reproduces
    // itself exactly.
    DibaAllocator again = makeAllocator(g, 0);
    again.reset(prob);
    Rng rng2(kSweepSeed);
    for (int s = 0; s < 6; ++s)
        again.gossipSweep(rng2);
    expectBitwiseEqual(ref, again, "run-twice");
}

/**
 * Satellite bar: over the fault_storm loss grid, batched sweeps
 * must keep the conservation invariant machine-checked every sweep
 * and land within 0.5% of the scalar tick path's utility fraction
 * after the same number of edge activations.
 */
TEST(GossipSweepTest, LossGridQualityMatchesScalarTicks)
{
    // Larger than the bitwise tests: at tiny n the scalar path's
    // random edge coverage is noisy enough to open a quality gap
    // that has nothing to do with the engines themselves.
    const std::size_t n = 256;
    Rng topo_rng(kTopoSeed);
    const Graph g = makeChordalRing(n, n / 4, topo_rng);
    const auto prob = test::npbProblem(n, 171.0, kProblemSeed);
    const double opt = solveKkt(prob).utility;
    const std::size_t sweeps = 64;

    LossyChannel::Config grid[4];
    grid[1].drop_rate = 0.1;
    grid[2].drop_rate = 0.3;
    grid[3].drop_rate = 0.05;
    grid[3].burst_enter = 0.02;
    grid[3].burst_exit = 0.25;
    grid[3].burst_drop = 0.9;

    for (std::size_t gi = 0; gi < 4; ++gi) {
        DibaAllocator sweep = makeAllocator(g);
        DibaAllocator scalar = makeAllocator(g);
        sweep.reset(prob);
        scalar.reset(prob);
        const std::size_t e = sweep.liveEdges().size();

        LossyChannel chan_a(grid[gi], 50 + gi);
        LossyChannel chan_b(grid[gi], 50 + gi);
        InvariantChecker check_a;
        InvariantChecker check_b;
        Rng rng_a(kSweepSeed);
        Rng rng_b(kSweepSeed);
        for (std::size_t s = 0; s < sweeps; ++s) {
            sweep.gossipSweep(rng_a, chan_a);
            for (std::size_t t = 0; t < e; ++t)
                scalar.gossipTick(rng_b, chan_b);
            check_a.check(sweep);
            check_b.check(scalar);
        }
        const double frac_sweep =
            totalUtility(prob.utilities, sweep.power()) / opt;
        const double frac_scalar =
            totalUtility(prob.utilities, scalar.power()) / opt;
        EXPECT_NEAR(frac_sweep, frac_scalar, 0.005)
            << "loss grid entry " << gi;
        EXPECT_EQ(check_a.roundsChecked(), sweeps);
        EXPECT_EQ(check_b.roundsChecked(), sweeps);
    }
}

TEST(GossipSweepTest, ChurnRepairsScheduleAndKeepsInvariants)
{
    const Graph g = testTopology();
    const auto prob = test::npbProblem(kNodes, 171.0, kProblemSeed);

    DibaAllocator diba = makeAllocator(g);
    diba.reset(prob);
    Rng rng(kSweepSeed);
    Rng churn(5);

    std::vector<std::size_t> failed;
    for (int s = 0; s < 24; ++s) {
        diba.gossipSweep(rng);
        if (s % 6 == 1) {
            // Fail a random still-active node (never the last few).
            std::size_t i = churn.index(kNodes);
            while (!diba.isActive(i))
                i = (i + 1) % kNodes;
            diba.failNode(i);
            failed.push_back(i);
        }
        if (s % 6 == 3 && !failed.empty()) {
            diba.joinNode(failed.back());
            failed.pop_back();
        }
        ASSERT_TRUE(diba.liveEdgeListExact());

        // The repaired coloring must equal a fresh coloring of the
        // current live overlay (determinism of the greedy rule).
        // Only node churn happens here, so an edge is live iff
        // both endpoints are active.
        const auto &edges = diba.overlayEdges();
        std::vector<std::uint8_t> live(edges.size(), 0);
        for (std::size_t id = 0; id < edges.size(); ++id)
            live[id] = diba.isActive(edges[id].first) &&
                       diba.isActive(edges[id].second);
        EdgeColoring fresh;
        fresh.build(kNodes, edges, &live);
        const EdgeColoring &repaired = diba.edgeColoring();
        for (std::size_t id = 0; id < edges.size(); ++id)
            ASSERT_EQ(repaired.colorOf(id), fresh.colorOf(id))
                << "repair != fresh at sweep " << s << ", edge "
                << id;
    }
}

} // namespace
} // namespace dpc
