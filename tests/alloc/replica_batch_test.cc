/**
 * @file
 * ReplicaBatch tests: a perfect-channel lane must be bitwise
 * identical to a standalone DibaAllocator run; lanes must be
 * independent (a lane's trajectory depends only on its own spec,
 * not on which other lanes share the batch); lossy lanes must
 * conserve the budget invariant and still converge; the per-lane
 * control events (setBudget, setUtility, seedFrom) must act on
 * exactly one lane.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "alloc/diba.hh"
#include "alloc/replica_batch.hh"
#include "graph/topologies.hh"
#include "model/utility.hh"
#include "tests/alloc/test_problems.hh"
#include "util/stats.hh"

namespace dpc {
namespace {

/** Lane invariant |sum(e) - (sum(p) - P)| scaled to the budget. */
double
invariantDrift(const ReplicaBatch &batch, std::size_t r)
{
    const double se = sum(batch.estimatesOf(r));
    const double sp = batch.totalPower(r);
    return std::fabs(se - (sp - batch.budget(r))) /
           batch.budget(r);
}

TEST(ReplicaBatchTest, PerfectLaneIsBitwiseIdenticalToStandalone)
{
    const std::size_t n = 96;
    const auto prob = test::npbProblem(n, 172.0, 21);
    const Graph g = makeRing(n);

    DibaAllocator solo(g, DibaAllocator::Config{});
    solo.reset(prob);
    ReplicaBatch batch(g, prob, {ReplicaSpec{}});

    for (int r = 0; r < 400; ++r) {
        const double m_solo = solo.iterate();
        const double m_batch = batch.stepAll();
        ASSERT_EQ(m_solo, m_batch) << "max |dp| at round " << r;
    }
    const auto ps = solo.power();
    const auto es = solo.estimates();
    const auto pb = batch.powerOf(0);
    const auto eb = batch.estimatesOf(0);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(ps[i], pb[i]) << "power at node " << i;
        EXPECT_EQ(es[i], eb[i]) << "estimate at node " << i;
    }
}

TEST(ReplicaBatchTest, LanesAreIndependentOfTheirBatchMates)
{
    // Lane values must depend only on the lane's own spec: the
    // middle lane of a mixed batch (different budgets, different
    // drop rates around it) must track a single-lane batch with the
    // same spec bit for bit.
    const std::size_t n = 64;
    const auto prob = test::npbProblem(n, 172.0, 33);
    Rng topo_rng(9);
    const Graph g = makeChordalRing(n, 8, topo_rng);

    const ReplicaSpec probe{/*seed=*/77, /*drop_rate=*/0.15,
                            /*budget=*/0.97 * prob.budget};
    ReplicaBatch alone(g, prob, {probe});
    ReplicaBatch mixed(g, prob,
                       {ReplicaSpec{5, 0.3, 0.0}, probe,
                        ReplicaSpec{123, 0.0, 1.02 * prob.budget}});

    for (int r = 0; r < 300; ++r) {
        alone.stepAll();
        mixed.stepAll();
    }
    const auto pa = alone.powerOf(0);
    const auto pm = mixed.powerOf(1);
    const auto ea = alone.estimatesOf(0);
    const auto em = mixed.estimatesOf(1);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(pa[i], pm[i]) << "power at node " << i;
        EXPECT_EQ(ea[i], em[i]) << "estimate at node " << i;
    }
}

TEST(ReplicaBatchTest, LossyLanesConserveInvariantAndConverge)
{
    const std::size_t n = 80;
    const auto prob = test::npbProblem(n, 172.0, 41);
    Rng topo_rng(3);
    const Graph g = makeChordalRing(n, 10, topo_rng);

    std::vector<ReplicaSpec> specs;
    for (std::uint64_t r = 0; r < 4; ++r)
        specs.push_back(ReplicaSpec{100 + r, 0.1 * r, 0.0});
    ReplicaBatch batch(g, prob, specs);

    for (int round = 0; round < 4000 && !batch.allConverged();
         ++round)
        batch.stepAll();

    for (std::size_t r = 0; r < specs.size(); ++r) {
        // Heavy loss keeps injecting gossip jitter, so only the
        // light-loss lanes are required to reach the quiet-rounds
        // stopping rule; the safety invariants must hold for every
        // lane under any loss pattern.
        if (specs[r].drop_rate <= 0.1) {
            EXPECT_TRUE(batch.converged(r)) << "lane " << r;
        }
        EXPECT_LT(invariantDrift(batch, r), 1e-9) << "lane " << r;
        EXPECT_LT(batch.totalPower(r), batch.budget(r))
            << "lane " << r;
        for (double e : batch.estimatesOf(r))
            EXPECT_LT(e, 0.0) << "lane " << r;
    }
}

TEST(ReplicaBatchTest, SetBudgetActsOnOneLaneOnly)
{
    const std::size_t n = 48;
    const auto prob = test::npbProblem(n, 172.0, 51);
    const Graph g = makeRing(n);
    // A converged lane still makes sub-tolerance micro-moves every
    // round, so "untouched" is judged against a control batch that
    // steps in lockstep without receiving the event.
    ReplicaBatch batch(g, prob, {ReplicaSpec{}, ReplicaSpec{}});
    ReplicaBatch control(g, prob, {ReplicaSpec{}, ReplicaSpec{}});

    while (!batch.allConverged()) {
        batch.stepAll();
        control.stepAll();
    }

    // A 15% cut on lane 0 must leave lane 1 on the control
    // trajectory bit for bit and drag lane 0 under the new cap.
    const double cut = 0.85 * batch.budget(0);
    batch.setBudget(0, cut);
    EXPECT_LT(batch.totalPower(0), cut);
    for (int r = 0; r < 600; ++r) {
        batch.stepAll();
        control.stepAll();
    }
    EXPECT_LT(batch.totalPower(0), cut);
    EXPECT_LT(invariantDrift(batch, 0), 1e-9);
    const auto other = batch.powerOf(1);
    const auto ref = control.powerOf(1);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(ref[i], other[i]) << "lane 1 node " << i;
}

TEST(ReplicaBatchTest, SetUtilityPerturbsOneLaneOnly)
{
    const std::size_t n = 48;
    const auto prob = test::npbProblem(n, 172.0, 61);
    const Graph g = makeRing(n);
    ReplicaBatch batch(g, prob, {ReplicaSpec{}, ReplicaSpec{}});
    ReplicaBatch control(g, prob, {ReplicaSpec{}, ReplicaSpec{}});
    while (!batch.allConverged()) {
        batch.stepAll();
        control.stepAll();
    }

    // Swap node 7's workload in lane 1 to a much hungrier shape;
    // lane 0 must stay on the control trajectory bit for bit.
    batch.setUtility(
        1, 7, QuadraticUtility::fromShape(0.95, 0.95, 100.0, 200.0));
    EXPECT_FALSE(batch.converged(1));
    for (int r = 0; r < 400; ++r) {
        batch.stepAll();
        control.stepAll();
    }
    const auto after0 = batch.powerOf(0);
    const auto ref0 = control.powerOf(0);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(ref0[i], after0[i]) << "lane 0 node " << i;
    EXPECT_LT(batch.totalPower(1), batch.budget(1));
    EXPECT_LT(invariantDrift(batch, 1), 1e-9);
}

TEST(ReplicaBatchTest, SeedFromReconvergesFasterThanColdStart)
{
    const std::size_t n = 128;
    const auto prob = test::npbProblem(n, 172.0, 71);
    Rng topo_rng(6);
    const Graph g = makeChordalRing(n, 12, topo_rng);

    ReplicaBatch batch(g, prob, {ReplicaSpec{}});
    while (!batch.allConverged())
        batch.stepAll();
    const std::size_t cold_rounds = batch.rounds();
    const auto settled = batch.powerOf(0);

    // Fan out 3 lanes from the settled allocation with budgets up
    // to ±5% away; each should settle in a fraction of the cold
    // solve.
    std::vector<ReplicaSpec> specs{
        ReplicaSpec{1, 0.0, 0.95 * prob.budget},
        ReplicaSpec{2, 0.0, prob.budget},
        ReplicaSpec{3, 0.0, 1.05 * prob.budget}};
    ReplicaBatch sweep(g, prob, specs);
    sweep.seedFrom(settled);
    while (!sweep.allConverged())
        sweep.stepAll();
    EXPECT_LT(sweep.rounds(), cold_rounds / 2)
        << "warm sweep should beat half the cold solve ("
        << cold_rounds << " rounds)";
    for (std::size_t r = 0; r < specs.size(); ++r) {
        EXPECT_LT(sweep.totalPower(r), sweep.budget(r));
        EXPECT_LT(invariantDrift(sweep, r), 1e-9);
    }
}

} // namespace
} // namespace dpc
