#include <gtest/gtest.h>

#include "alloc/problem.hh"
#include "tests/alloc/test_problems.hh"
#include "util/stats.hh"

namespace dpc {
namespace {

TEST(ProblemTest, TotalsAndFeasibility)
{
    const auto prob = test::tinyProblem();
    EXPECT_DOUBLE_EQ(prob.minTotalPower(), 200.0);
    EXPECT_DOUBLE_EQ(prob.maxTotalPower(), 400.0);
    EXPECT_TRUE(prob.isFeasible());

    auto tight = prob;
    tight.budget = 150.0;
    EXPECT_FALSE(tight.isFeasible());
    EXPECT_DEATH(tight.validate(), "infeasible");
}

TEST(ProblemTest, ValidateRejectsEmptyAndNull)
{
    AllocationProblem empty;
    empty.budget = 100.0;
    EXPECT_DEATH(empty.validate(), "no servers");

    AllocationProblem withnull;
    withnull.utilities.push_back(nullptr);
    withnull.budget = 100.0;
    EXPECT_DEATH(withnull.validate(), "null utility");
}

TEST(ProblemTest, UniformStartSplitsEvenly)
{
    const auto prob = test::tinyProblem(); // budget 310, boxes 100-200
    const auto p = uniformStart(prob);
    ASSERT_EQ(p.size(), 2u);
    EXPECT_DOUBLE_EQ(p[0], 155.0);
    EXPECT_DOUBLE_EQ(p[1], 155.0);
}

TEST(ProblemTest, UniformStartClampsIntoBoxes)
{
    AllocationProblem prob;
    prob.utilities.push_back(std::make_shared<QuadraticUtility>(
        QuadraticUtility::fromShape(0.5, 0.5, 100.0, 140.0)));
    prob.utilities.push_back(std::make_shared<QuadraticUtility>(
        QuadraticUtility::fromShape(0.5, 0.5, 100.0, 300.0)));
    prob.budget = 400.0;
    const auto p = uniformStart(prob);
    EXPECT_DOUBLE_EQ(p[0], 140.0); // clamped to its max
    EXPECT_DOUBLE_EQ(p[1], 200.0);
}

TEST(ProblemTest, UniformStartSlackLeavesHeadroom)
{
    const auto prob = test::npbProblem(50, 170.0, 1);
    const auto p = uniformStart(prob, 0.02);
    EXPECT_LT(sum(p), prob.budget);
    EXPECT_NEAR(sum(p), 0.98 * prob.budget, 1e-6);
}

TEST(ProblemTest, ResultTotalPower)
{
    AllocationResult res;
    res.power = {10.0, 20.0, 30.0};
    EXPECT_DOUBLE_EQ(res.totalPower(), 60.0);
}

} // namespace
} // namespace dpc
