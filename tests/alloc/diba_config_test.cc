#include <gtest/gtest.h>

#include "alloc/diba.hh"
#include "alloc/kkt.hh"
#include "graph/topologies.hh"
#include "metrics/performance.hh"
#include "tests/alloc/test_problems.hh"

namespace dpc {
namespace {

/**
 * Configuration-space sweep: every supported parameterization must
 * keep the safety invariants and land within a configuration-
 * dependent distance of the oracle.  This pins down the behaviour
 * the ablation bench reports.
 */
struct ConfigCase
{
    const char *label;
    DibaAllocator::Config cfg;
    double min_fraction; // of oracle utility after the horizon
};

class DibaConfigSweep : public ::testing::TestWithParam<int>
{
  protected:
    static std::vector<ConfigCase>
    cases()
    {
        std::vector<ConfigCase> out;
        DibaAllocator::Config base;
        out.push_back({"default", base, 0.985});

        auto no_anneal = base;
        no_anneal.eta_initial = no_anneal.eta;
        out.push_back({"fixed floor barrier", no_anneal, 0.985});

        auto loose = base;
        loose.eta = loose.eta_initial;
        // Never tightens onto the budget: capped utility.
        out.push_back({"fixed loose barrier", loose, 0.85});

        auto gated = base;
        gated.deadband = 0.05;
        out.push_back({"gated gossip", gated, 0.97});

        auto tiny_moves = base;
        tiny_moves.max_move = 1.0;
        out.push_back({"small move cap", tiny_moves, 0.97});

        auto heavy = base;
        heavy.damping = 0.25;
        out.push_back({"over-damped", heavy, 0.98});
        return out;
    }
};

TEST_P(DibaConfigSweep, SafeAndWithinExpectedDistance)
{
    const auto c = cases()[static_cast<std::size_t>(GetParam())];
    const std::size_t n = 64;
    const auto prob = test::npbProblem(n, 170.0, 41);
    const auto opt = solveKkt(prob);
    Rng topo_rng(42);
    DibaAllocator diba(makeChordalRing(n, 16, topo_rng), c.cfg);
    diba.reset(prob);
    for (int it = 0; it < 4000; ++it) {
        diba.iterate();
        ASSERT_LT(diba.totalPower(), prob.budget) << c.label;
    }
    const double u = totalUtility(prob.utilities, diba.power());
    EXPECT_GT(u, c.min_fraction * opt.utility)
        << c.label << ": " << u << " vs " << opt.utility;
}

INSTANTIATE_TEST_SUITE_P(Configs, DibaConfigSweep,
                         ::testing::Range(0, 6));

TEST(DibaConfigTest, InvalidConfigsRejected)
{
    DibaAllocator::Config bad;
    bad.eta = 0.0;
    EXPECT_DEATH(DibaAllocator d(makeRing(4), bad), "positive");

    DibaAllocator::Config inverted;
    inverted.eta_initial = inverted.eta / 2.0;
    EXPECT_DEATH(DibaAllocator d(makeRing(4), inverted), "floor");

    DibaAllocator::Config keep;
    keep.barrier_keep = 1.5;
    EXPECT_DEATH(DibaAllocator d(makeRing(4), keep),
                 "barrier_keep");

    DibaAllocator::Config decay;
    decay.eta_decay = 0.0;
    EXPECT_DEATH(DibaAllocator d(makeRing(4), decay), "eta_decay");
}

TEST(DibaConfigTest, LooseBudgetEveryoneNearPeak)
{
    // With ample budget the barrier should not hold anyone back
    // appreciably: everyone climbs to (near) peak power.
    const std::size_t n = 24;
    auto prob = test::npbProblem(n, 230.0, 43); // > p_max everywhere
    DibaAllocator diba(makeRing(n));
    diba.reset(prob);
    for (int it = 0; it < 3000; ++it)
        diba.iterate();
    for (std::size_t i = 0; i < n; ++i) {
        // Near-peak in value terms (the top of a saturating curve
        // is flat, so power converges there only asymptotically).
        EXPECT_GT(anp(*prob.utilities[i], diba.power()[i]), 0.995)
            << "node " << i;
    }
}

} // namespace
} // namespace dpc
