#include <gtest/gtest.h>

#include "alloc/centralized.hh"
#include "alloc/kkt.hh"
#include "tests/alloc/test_problems.hh"
#include "util/stats.hh"

namespace dpc {
namespace {

TEST(ProjectionTest, InsideStaysPut)
{
    const auto prob = test::tinyProblem();
    const auto p = projectToFeasible(prob, {120.0, 130.0});
    EXPECT_DOUBLE_EQ(p[0], 120.0);
    EXPECT_DOUBLE_EQ(p[1], 130.0);
}

TEST(ProjectionTest, OverBudgetLandsOnHyperplane)
{
    const auto prob = test::tinyProblem(); // budget 310
    const auto p = projectToFeasible(prob, {200.0, 200.0});
    EXPECT_NEAR(p[0] + p[1], 310.0, 1e-6);
    // Equidistant shift: both move down by the same amount.
    EXPECT_NEAR(p[0], p[1], 1e-6);
}

TEST(ProjectionTest, BoxClampsRespected)
{
    const auto prob = test::tinyProblem();
    const auto p = projectToFeasible(prob, {500.0, 90.0});
    EXPECT_LE(p[0], 200.0 + 1e-12);
    EXPECT_GE(p[1], 100.0 - 1e-12);
}

TEST(CentralizedTest, MatchesKktOracleOnTiny)
{
    const auto prob = test::tinyProblem();
    CentralizedAllocator solver;
    const auto got = solver.allocate(prob);
    const auto opt = solveKkt(prob);
    EXPECT_NEAR(got.utility, opt.utility, 1e-6 * opt.utility);
    EXPECT_TRUE(got.converged);
}

TEST(CentralizedTest, MatchesKktOracleOnRandomClusters)
{
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        const auto prob = test::npbProblem(100, 168.0, seed);
        CentralizedAllocator solver;
        const auto got = solver.allocate(prob);
        const auto opt = solveKkt(prob);
        EXPECT_NEAR(got.utility, opt.utility,
                    1e-4 * opt.utility)
            << "seed " << seed;
        EXPECT_LE(got.totalPower(), prob.budget + 1e-6);
    }
}

TEST(CentralizedTest, RespectsBoxes)
{
    const auto prob = test::npbProblem(50, 150.0, 5);
    CentralizedAllocator solver;
    const auto res = solver.allocate(prob);
    for (std::size_t i = 0; i < prob.size(); ++i) {
        EXPECT_GE(res.power[i],
                  prob.utilities[i]->minPower() - 1e-9);
        EXPECT_LE(res.power[i],
                  prob.utilities[i]->maxPower() + 1e-9);
    }
}

TEST(CentralizedTest, IterationCapRespected)
{
    CentralizedAllocator::Config cfg;
    cfg.max_iterations = 3;
    cfg.tolerance = 0.0; // never satisfied
    CentralizedAllocator solver(cfg);
    const auto res = solver.allocate(test::npbProblem(20, 160.0, 9));
    EXPECT_LE(res.iterations, 3u);
}

} // namespace
} // namespace dpc
