#include <gtest/gtest.h>

#include "alloc/hierarchical.hh"
#include "alloc/kkt.hh"
#include "alloc/uniform.hh"
#include "metrics/performance.hh"
#include "tests/alloc/test_problems.hh"

namespace dpc {
namespace {

TEST(HierarchicalTest, FeasibleAndBoxed)
{
    const auto prob = test::npbProblem(100, 168.0, 1);
    HierarchicalAllocator::Config cfg;
    cfg.rack_size = 20;
    HierarchicalAllocator h(cfg);
    const auto res = h.allocate(prob);
    EXPECT_LE(res.totalPower(), prob.budget + 1e-6);
    for (std::size_t i = 0; i < prob.size(); ++i) {
        EXPECT_GE(res.power[i],
                  prob.utilities[i]->minPower() - 1e-9);
        EXPECT_LE(res.power[i],
                  prob.utilities[i]->maxPower() + 1e-9);
    }
}

TEST(HierarchicalTest, BetweenUniformAndOracle)
{
    for (std::uint64_t seed : {2u, 3u, 4u}) {
        const auto prob = test::npbProblem(120, 170.0, seed);
        HierarchicalAllocator::Config cfg;
        cfg.rack_size = 24;
        HierarchicalAllocator h(cfg);
        UniformAllocator uniform;
        const auto r_h = h.allocate(prob);
        const auto r_u = uniform.allocate(prob);
        const auto opt = solveKkt(prob);
        EXPECT_LE(r_h.utility, opt.utility + 1e-6) << seed;
        EXPECT_GT(r_h.utility, r_u.utility) << seed;
        // With exact intra-rack solves and sampled inter-rack
        // splits, the hierarchy lands close to the optimum.
        EXPECT_TRUE(withinFractionOfOptimal(r_h.utility,
                                            opt.utility, 0.98))
            << seed << ": " << r_h.utility << " vs "
            << opt.utility;
    }
}

TEST(HierarchicalTest, DegenerateRackSizes)
{
    const auto prob = test::npbProblem(30, 170.0, 5);
    // Rack of one: level 1 is the whole problem.
    HierarchicalAllocator::Config one;
    one.rack_size = 1;
    const auto r1 = HierarchicalAllocator(one).allocate(prob);
    EXPECT_LE(r1.totalPower(), prob.budget + 1e-6);
    // One giant rack: level 2 is the whole problem (exact).
    HierarchicalAllocator::Config whole;
    whole.rack_size = 64;
    const auto r2 = HierarchicalAllocator(whole).allocate(prob);
    const auto opt = solveKkt(prob);
    EXPECT_NEAR(r2.utility, opt.utility, 1e-6 * opt.utility);
}

TEST(HierarchicalTest, MoreSamplesCannotHurtMuch)
{
    const auto prob = test::npbProblem(80, 169.0, 6);
    HierarchicalAllocator::Config coarse;
    coarse.rack_size = 16;
    coarse.samples = 3;
    HierarchicalAllocator::Config fine;
    fine.rack_size = 16;
    fine.samples = 17;
    const auto r_coarse =
        HierarchicalAllocator(coarse).allocate(prob);
    const auto r_fine = HierarchicalAllocator(fine).allocate(prob);
    EXPECT_GE(r_fine.utility, r_coarse.utility - 1e-3);
}

TEST(HierarchicalTest, RejectsBadConfig)
{
    HierarchicalAllocator::Config cfg;
    cfg.samples = 2;
    HierarchicalAllocator h(cfg);
    auto prob = test::tinyProblem();
    EXPECT_DEATH(h.allocate(prob), "samples");
}

} // namespace
} // namespace dpc
