#include <gtest/gtest.h>

#include "alloc/kkt.hh"
#include "alloc/primal_dual.hh"
#include "metrics/performance.hh"
#include "tests/alloc/test_problems.hh"

namespace dpc {
namespace {

TEST(PrimalDualTest, SlackBudgetConvergesImmediately)
{
    auto prob = test::tinyProblem();
    prob.budget = 1000.0;
    PrimalDualAllocator pd;
    const auto res = pd.allocate(prob);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, 1u);
    EXPECT_DOUBLE_EQ(res.power[0], 200.0);
}

TEST(PrimalDualTest, ReachesOracleUtility)
{
    for (std::uint64_t seed : {1u, 4u, 8u}) {
        const auto prob = test::npbProblem(200, 170.0, seed);
        PrimalDualAllocator pd;
        const auto res = pd.allocate(prob);
        const auto opt = solveKkt(prob);
        EXPECT_TRUE(res.converged) << "seed " << seed;
        EXPECT_TRUE(withinFractionOfOptimal(res.utility,
                                            opt.utility, 0.999))
            << "seed " << seed;
    }
}

TEST(PrimalDualTest, ReportedPointIsFeasible)
{
    const auto prob = test::npbProblem(150, 165.0, 2);
    PrimalDualAllocator pd;
    const auto res = pd.allocate(prob);
    EXPECT_LE(res.totalPower(), prob.budget + 1e-6);
    for (std::size_t i = 0; i < prob.size(); ++i) {
        EXPECT_GE(res.power[i],
                  prob.utilities[i]->minPower() - 1e-9);
        EXPECT_LE(res.power[i],
                  prob.utilities[i]->maxPower() + 1e-9);
    }
}

TEST(PrimalDualTest, ConvergesInFewIterations)
{
    // The paper's Table 4.2 behaviour: a handful of coordinator
    // round trips to 99% of optimal, independent of cluster size
    // (the tail to the tight default tolerance takes longer but
    // stays bounded).
    for (std::size_t n : {400u, 1600u}) {
        const auto prob = test::npbProblem(n, 172.0, 13);
        const auto opt = solveKkt(prob);
        PrimalDualAllocator pd;
        const auto res = pd.allocate(prob);
        EXPECT_TRUE(res.converged);
        EXPECT_LE(res.iterations, 150u) << "n=" << n;

        const auto &trace = pd.utilityTrace();
        std::size_t to99 = trace.size();
        for (std::size_t i = 0; i < trace.size(); ++i) {
            if (withinFractionOfOptimal(trace[i], opt.utility,
                                        0.99)) {
                to99 = i + 1;
                break;
            }
        }
        EXPECT_LE(to99, 15u) << "n=" << n;
    }
}

TEST(PrimalDualTest, UtilityTraceImprovesOverall)
{
    const auto prob = test::npbProblem(100, 168.0, 3);
    PrimalDualAllocator pd;
    pd.allocate(prob);
    const auto &trace = pd.utilityTrace();
    ASSERT_GE(trace.size(), 2u);
    EXPECT_GT(trace.back(), trace.front());
}

TEST(PrimalDualTest, IterationCapRespected)
{
    PrimalDualAllocator::Config cfg;
    cfg.max_iterations = 5;
    cfg.tolerance = 0.0;
    PrimalDualAllocator pd(cfg);
    const auto res = pd.allocate(test::npbProblem(50, 160.0, 6));
    EXPECT_LE(res.iterations, 5u);
}

} // namespace
} // namespace dpc
