#include <gtest/gtest.h>

#include "power/controller.hh"
#include "util/rng.hh"

namespace dpc {
namespace {

ServerPowerModel
testModel()
{
    return ServerPowerModel(60.0, 150.0, defaultPStateLadder(8));
}

TEST(ControllerTest, StepsDownWhenOverCap)
{
    const auto model = testModel();
    PowerCapController::Config cfg;
    cfg.initial_pstate = 7;
    PowerCapController ctl(model, cfg);
    ctl.setCap(150.0);
    const double measured = model.power(7, 1.0); // 210 W > cap
    const auto ps = ctl.engage(measured, 1.0);
    EXPECT_EQ(ps, 6u);
}

TEST(ControllerTest, ClimbsOnlyWhenNextStateFits)
{
    const auto model = testModel();
    PowerCapController ctl(model);
    ctl.setCap(model.maxPower() + 10.0);
    // From p-state 0 with a generous cap, the controller climbs.
    std::size_t ps = ctl.pstate();
    for (int i = 0; i < 20; ++i)
        ps = ctl.engage(model.power(ps, 1.0), 1.0);
    EXPECT_EQ(ps, model.numPStates() - 1);
}

TEST(ControllerTest, SettlesUnderTightCap)
{
    const auto model = testModel();
    PowerCapController::Config cfg;
    cfg.initial_pstate = 7;
    PowerCapController ctl(model, cfg);
    const double cap = 170.0;
    ctl.setCap(cap);
    std::size_t ps = ctl.pstate();
    for (int i = 0; i < 30; ++i)
        ps = ctl.engage(model.power(ps, 1.0), 1.0);
    // Settled: power under the cap...
    EXPECT_LE(model.power(ps, 1.0), cap);
    // ...at the highest p-state that fits.
    if (ps + 1 < model.numPStates()) {
        EXPECT_GT(model.power(ps + 1, 1.0), cap - 1.0);
    }
}

TEST(ControllerTest, NoLimitCyclingUnderNoise)
{
    const auto model = testModel();
    PowerCapController ctl(model);
    PowerMeter meter(0.01, 99);
    ctl.setCap(180.0);
    // Warm up.
    for (int i = 0; i < 20; ++i)
        ctl.engage(meter.read(model.power(ctl.pstate(), 1.0)), 1.0);
    // Track p-state changes over a long window.
    int changes = 0;
    std::size_t prev = ctl.pstate();
    for (int i = 0; i < 400; ++i) {
        const auto ps = ctl.engage(
            meter.read(model.power(ctl.pstate(), 1.0)), 1.0);
        if (ps != prev)
            ++changes;
        prev = ps;
    }
    // The hysteresis headroom keeps flapping rare (< 5% of steps).
    EXPECT_LT(changes, 20);
}

TEST(ControllerTest, CapNeverDrivesBelowFloorState)
{
    const auto model = testModel();
    PowerCapController ctl(model);
    ctl.setCap(10.0); // unattainable: even p-state 0 exceeds it
    for (int i = 0; i < 10; ++i)
        ctl.engage(model.power(ctl.pstate(), 1.0), 1.0);
    EXPECT_EQ(ctl.pstate(), 0u);
}

TEST(ControllerTest, RejectsBadInputs)
{
    const auto model = testModel();
    PowerCapController ctl(model);
    EXPECT_DEATH(ctl.setCap(0.0), "cap");
    PowerCapController::Config cfg;
    cfg.initial_pstate = 20;
    EXPECT_DEATH(PowerCapController bad(model, cfg),
                 "out of range");
}

/** Parameterized settling sweep across the cap range. */
class ControllerSettleSweep
    : public ::testing::TestWithParam<double>
{
};

TEST_P(ControllerSettleSweep, SettlesUnderAnyCap)
{
    const auto model = testModel();
    PowerCapController::Config cfg;
    cfg.initial_pstate = 7;
    PowerCapController ctl(model, cfg);
    ctl.setCap(GetParam());
    for (int i = 0; i < 40; ++i)
        ctl.engage(model.power(ctl.pstate(), 1.0), 1.0);
    EXPECT_TRUE(model.power(ctl.pstate(), 1.0) <= GetParam() ||
                ctl.pstate() == 0u);
}

INSTANTIATE_TEST_SUITE_P(CapSweep, ControllerSettleSweep,
                         ::testing::Values(130.0, 150.0, 170.0,
                                           190.0, 205.0, 215.0));

} // namespace
} // namespace dpc
