#include <gtest/gtest.h>

#include "power/server_model.hh"
#include "util/stats.hh"

namespace dpc {
namespace {

TEST(PStateLadderTest, DefaultLadderShape)
{
    const auto ladder = defaultPStateLadder(8);
    ASSERT_EQ(ladder.size(), 8u);
    EXPECT_NEAR(ladder.front().freq_ghz, 1.60, 1e-12);
    EXPECT_NEAR(ladder.back().freq_ghz, 2.27, 1e-12);
    EXPECT_NEAR(ladder.back().dyn_scale, 1.0, 1e-12);
    for (std::size_t i = 1; i < ladder.size(); ++i) {
        EXPECT_GT(ladder[i].freq_ghz, ladder[i - 1].freq_ghz);
        EXPECT_GT(ladder[i].dyn_scale, ladder[i - 1].dyn_scale);
    }
}

TEST(ServerPowerModelTest, PowerMonotoneInPStateAndActivity)
{
    ServerPowerModel m(60.0, 150.0, defaultPStateLadder(8));
    for (std::size_t ps = 1; ps < m.numPStates(); ++ps)
        EXPECT_GT(m.power(ps, 1.0), m.power(ps - 1, 1.0));
    EXPECT_GT(m.power(3, 0.8), m.power(3, 0.4));
    EXPECT_DOUBLE_EQ(m.power(5, 0.0), 60.0);
}

TEST(ServerPowerModelTest, MinMaxPower)
{
    ServerPowerModel m(60.0, 150.0, defaultPStateLadder(8));
    EXPECT_DOUBLE_EQ(m.maxPower(), 210.0);
    EXPECT_LT(m.minPower(), m.maxPower());
    EXPECT_GT(m.minPower(), 60.0);
}

TEST(ServerPowerModelTest, RejectsBadConfig)
{
    EXPECT_DEATH(
        ServerPowerModel(0.0, 100.0, defaultPStateLadder(4)),
        "positive");
    EXPECT_DEATH(ServerPowerModel(50.0, 100.0, {}), "empty");
}

TEST(ServerPowerModelTest, ActivityOutOfRangePanics)
{
    ServerPowerModel m(60.0, 150.0, defaultPStateLadder(4));
    EXPECT_DEATH(m.power(0, 1.5), "activity");
    EXPECT_DEATH(m.power(9, 1.0), "out of range");
}

TEST(PowerMeterTest, NoiseStatistics)
{
    PowerMeter meter(0.02, 7);
    std::vector<double> readings;
    for (int i = 0; i < 20000; ++i)
        readings.push_back(meter.read(100.0));
    EXPECT_NEAR(mean(readings), 100.0, 0.2);
    EXPECT_NEAR(stddev(readings), 2.0, 0.2);
}

TEST(PowerMeterTest, ZeroNoiseIsExact)
{
    PowerMeter meter(0.0, 7);
    EXPECT_DOUBLE_EQ(meter.read(123.0), 123.0);
}

} // namespace
} // namespace dpc
