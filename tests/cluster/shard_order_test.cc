/**
 * @file
 * Delivery-order fuzz for the cut-batch data plane: a shard's
 * round arithmetic must be invariant to the ORDER its peer-half
 * patch deliveries arrive in and to how the round's batches are
 * SPLIT across partial frames -- UDP reorders datagrams and the
 * batch packer splits on the budget boundary, so any order
 * dependence would show up as cross-host nondeterminism.
 *
 * The scripted transport reproduces SocketTransport's depth-0
 * delivery contract in-process: send() immediately yields the pair
 * delivery (fate {delivered, 0}, no update flags), and the peer
 * halves of cut edges arrive later as separate patch deliveries
 * (update flag on the non-owned endpoint) in an order and chunking
 * the test controls.  Every permutation of one round's patches,
 * and every chunked release schedule across a multi-round run,
 * must land bitwise on the single-process trajectory.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "cluster/shard.hh"
#include "graph/topologies.hh"
#include "net/transport.hh"
#include "tests/alloc/test_problems.hh"
#include "util/rng.hh"

namespace dpc {
namespace {

using cluster::ShardPlan;
using cluster::makeShardPlan;

/** Scripted shard-side transport (see file header).  tryPoll()
 * releases at most `chunk` patches per drain loop, emulating
 * partial batches arriving between interior compute chunks; poll()
 * hands over everything left. */
class ScriptTransport final : public net::Transport
{
  public:
    void beginRound(std::uint64_t, std::size_t) override
    {
        q_.clear();
        head_ = 0;
    }

    void send(const net::EdgePair &pair) override
    {
        net::Delivery d;
        d.pair = pair;
        q_.push_back(d);
    }

    bool poll(net::Delivery &out) override
    {
        if (head_ < q_.size()) {
            out = q_[head_++];
            return true;
        }
        if (ppos_ < patches_.size()) {
            out = patches_[ppos_++];
            return true;
        }
        return false;
    }

    bool tryPoll(net::Delivery &out) override
    {
        if (head_ < q_.size()) {
            out = q_[head_++];
            return true;
        }
        if (burst_ >= chunk_ || ppos_ >= patches_.size()) {
            burst_ = 0; // drain loop ends; next loop gets more
            return false;
        }
        ++burst_;
        out = patches_[ppos_++];
        return true;
    }

    bool incomplete() const override
    {
        return ppos_ < patches_.size();
    }

    std::size_t maxLag() const override { return 0; }

    /** Arm one round's patch deliveries in the given order; chunk
     * bounds how many each tryPoll drain loop may release. */
    void
    injectPatches(std::vector<net::Delivery> patches,
                  std::size_t chunk)
    {
        EXPECT_EQ(ppos_, patches_.size())
            << "previous round left patches undelivered";
        patches_ = std::move(patches);
        ppos_ = 0;
        burst_ = 0;
        chunk_ = chunk == 0 ? 1 : chunk;
    }

  private:
    std::vector<net::Delivery> q_;
    std::size_t head_ = 0;
    std::vector<net::Delivery> patches_;
    std::size_t ppos_ = 0;
    std::size_t burst_ = 0;
    std::size_t chunk_ = 1;
};

/** The patch deliveries shard `s` receives for one round: the peer
 * half of every cut edge incident to its block, values taken from
 * the combined pre-round estimate snapshot (original ids). */
std::vector<net::Delivery>
patchesFor(const ShardPlan &plan,
           const std::vector<std::pair<std::size_t, std::size_t>>
               &edges,
           const std::vector<double> &pre, std::uint32_t s,
           std::uint64_t round)
{
    std::vector<net::Delivery> out;
    for (std::size_t id = 0; id < edges.size(); ++id) {
        const auto &[u, v] = edges[id];
        const std::uint32_t su = plan.owner_of[u];
        const std::uint32_t sv = plan.owner_of[v];
        if (su == sv || (su != s && sv != s))
            continue;
        net::Delivery d;
        d.pair.edge_id = static_cast<std::uint32_t>(id);
        d.pair.u = static_cast<std::uint32_t>(u);
        d.pair.v = static_cast<std::uint32_t>(v);
        d.pair.round = round;
        d.pair.e_u = pre[u];
        d.pair.e_v = pre[v];
        d.update_u = su != s;
        d.update_v = sv != s;
        out.push_back(d);
    }
    return out;
}

void
expectOwnedBitwiseEqual(const ShardPlan &plan, std::uint32_t s,
                        const std::vector<double> &got,
                        const std::vector<double> &want,
                        const char *what)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        if (plan.owner_of[i] != s)
            continue;
        EXPECT_EQ(
            std::memcmp(&got[i], &want[i], sizeof(double)), 0)
            << what << " bit pattern differs at node " << i;
    }
}

TEST(ShardOrderTest, EveryPatchPermutationLandsOnTheSameBits)
{
    // One round from the reset state: shard 0's owned block after
    // the round must be bitwise identical under EVERY arrival
    // order of its patch deliveries (UDP reorder worst case), and
    // equal to the single-process round.
    const std::size_t n = 24;
    const auto prob = test::npbProblem(n, 170.0, 5);
    const DibaAllocator::Config cfg{};

    // The locality layout actively shrinks the cut, so probe chord
    // densities until shard 0 sees a cut that is big enough to be
    // interesting yet small enough to permute exhaustively.
    Graph topo;
    ShardPlan plan;
    std::vector<net::Delivery> base;
    std::vector<double> pre;
    for (const std::size_t chords : {3u, 6u, 9u, 12u, 16u}) {
        Rng topo_rng(2);
        topo = makeChordalRing(n, chords, topo_rng);
        DibaAllocator planner(topo, cfg);
        plan = makeShardPlan(planner, 2);
        planner.reset(prob);
        pre = planner.estimates();
        base = patchesFor(plan, planner.overlayEdges(), pre, 0, 0);
        if (base.size() >= 3 && base.size() <= 7)
            break;
    }
    ASSERT_GE(base.size(), 3u) << "cut too small to permute";
    ASSERT_LE(base.size(), 7u)
        << "cut too large for exhaustive permutation";

    // Single-process reference, one round.
    DibaAllocator ref(topo, cfg);
    ref.reset(prob);
    net::LoopbackTransport loopback;
    ref.stepWithTransport(loopback);

    std::vector<std::size_t> order(base.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::size_t perms = 0;
    do {
        std::vector<net::Delivery> patches;
        for (const std::size_t i : order)
            patches.push_back(base[i]);

        DibaAllocator shard(topo, cfg);
        shard.reset(prob);
        ScriptTransport t;
        // Cycle the chunked-release size too, so permutations are
        // also exercised split across partial batches.
        t.injectPatches(std::move(patches), 1 + perms % 4);
        shard.iterateShard(t, plan.block_begin[0],
                           plan.block_end[0],
                           /*overlap=*/perms % 2 == 0);
        EXPECT_FALSE(t.incomplete());

        expectOwnedBitwiseEqual(plan, 0, shard.power(),
                                ref.power(), "power");
        expectOwnedBitwiseEqual(plan, 0, shard.estimates(),
                                ref.estimates(), "estimate");
        ++perms;
    } while (std::next_permutation(order.begin(), order.end()));
    EXPECT_GE(perms, 6u);
}

TEST(ShardOrderTest, ShuffledSplitDeliveriesTrackTheReference)
{
    // Multi-round trajectory: both shards advance in lockstep with
    // seeded-shuffled patch orders and varying chunked release
    // (including chunk 1: every patch in its own partial batch),
    // overlap alternating per shard and per round.  The assembled
    // owned state must stay bitwise on the single-process
    // trajectory every round.
    const std::size_t n = 48, rounds = 20;
    const auto prob = test::npbProblem(n, 170.0, 11);
    Rng topo_rng(4);
    const auto topo = makeChordalRing(n, 6, topo_rng);
    const DibaAllocator::Config cfg{};

    DibaAllocator planner(topo, cfg);
    const auto plan = makeShardPlan(planner, 2);
    const auto &edges = planner.overlayEdges();

    DibaAllocator ref(topo, cfg);
    ref.reset(prob);
    net::LoopbackTransport loopback;

    DibaAllocator shard_a(topo, cfg), shard_b(topo, cfg);
    shard_a.reset(prob);
    shard_b.reset(prob);
    ScriptTransport ta, tb;

    Rng rng(1234);
    for (std::size_t r = 0; r < rounds; ++r) {
        // Combined pre-round snapshot, each node from its owner.
        const std::vector<double> &ea = shard_a.estimates();
        const std::vector<double> &eb = shard_b.estimates();
        std::vector<double> pre(n);
        for (std::size_t i = 0; i < n; ++i)
            pre[i] = plan.owner_of[i] == 0 ? ea[i] : eb[i];

        auto pa = patchesFor(plan, edges, pre, 0, r);
        auto pb = patchesFor(plan, edges, pre, 1, r);
        if (r > 0) {
            rng.shuffle(pa);
            rng.shuffle(pb);
        }
        ta.injectPatches(std::move(pa), 1 + rng.index(4));
        tb.injectPatches(std::move(pb), 1 + rng.index(4));

        shard_a.iterateShard(ta, plan.block_begin[0],
                             plan.block_end[0],
                             /*overlap=*/r % 2 == 0);
        shard_b.iterateShard(tb, plan.block_begin[1],
                             plan.block_end[1],
                             /*overlap=*/r % 3 != 0);
        ref.stepWithTransport(loopback);

        expectOwnedBitwiseEqual(plan, 0, shard_a.power(),
                                ref.power(), "A power");
        expectOwnedBitwiseEqual(plan, 1, shard_b.power(),
                                ref.power(), "B power");
        expectOwnedBitwiseEqual(plan, 0, shard_a.estimates(),
                                ref.estimates(), "A estimate");
        expectOwnedBitwiseEqual(plan, 1, shard_b.estimates(),
                                ref.estimates(), "B estimate");
    }
}

} // namespace
} // namespace dpc
