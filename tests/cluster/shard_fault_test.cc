/**
 * @file
 * Process-level fault injection against the sharded runtime: the
 * broker's handshake/liveness deadlines fail cleanly and within
 * bound, SIGKILL/SIGSTOP mid-run triggers the epoch-fenced
 * recovery, and the survivors' post-recovery trajectory is
 * bitwise-equal to a single-process allocator that suffers the
 * identical surgery at the identical round boundary
 * (applyShardRecovery).  Every recovered trajectory is
 * InvariantChecker-audited round by round, so cap conservation on
 * the survivor partition is machine-checked, not eyeballed.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <sys/wait.h>

#include "cluster/shard.hh"
#include "fault/invariant_checker.hh"
#include "fault/shard_fault.hh"
#include "graph/topologies.hh"
#include "net/socket_transport.hh"
#include "net/transport.hh"
#include "tests/alloc/test_problems.hh"

namespace dpc {
namespace {

using cluster::ShardPlan;
using cluster::ShardRunOptions;
using cluster::ShardRunResult;
using cluster::applyShardRecovery;
using cluster::makeShardPlan;
using cluster::runShardedDiba;

double
elapsedSeconds(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

void
expectBitwiseEqual(const std::vector<double> &a,
                   const std::vector<double> &b, const char *what)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i], b[i]) << what << " index " << i;
        EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
            << what << " bit pattern differs at index " << i;
    }
}

/** Single-process reference trajectory over the identity
 * loopback (pinned bitwise to plain iterate()). */
DibaAllocator
referenceRun(const AllocationProblem &prob, const Graph &topo,
             const DibaAllocator::Config &cfg, std::size_t rounds)
{
    DibaAllocator alloc(topo, cfg);
    alloc.reset(prob);
    net::LoopbackTransport loopback;
    for (std::size_t r = 0; r < rounds; ++r)
        alloc.stepWithTransport(loopback);
    return alloc;
}

/**
 * The survivors' predicted trajectory: run single-process to the
 * resume round the broker reported, apply the identical recovery
 * surgery (fail the dead blocks, re-federate the folded held
 * budget), then run the remaining rounds -- auditing the safety
 * invariants after every post-recovery round.
 */
DibaAllocator
recoveredReference(const AllocationProblem &prob, const Graph &topo,
                   const DibaAllocator::Config &cfg,
                   const ShardRunResult &res, std::size_t rounds)
{
    DibaAllocator alloc(topo, cfg);
    alloc.reset(prob);
    net::LoopbackTransport loopback;
    for (std::uint64_t r = 0; r < res.recovery_round; ++r)
        alloc.stepWithTransport(loopback);
    applyShardRecovery(alloc, res.plan, res.dead_mask, res.epoch);
    InvariantChecker checker;
    checker.check(alloc);
    for (std::size_t r = res.recovery_round; r < rounds; ++r) {
        alloc.stepWithTransport(loopback);
        checker.check(alloc);
    }
    return alloc;
}

/** Compare the survivor-owned entries of the sharded result
 * against the reference, bitwise. */
void
expectSurvivorsBitwise(const ShardRunResult &res,
                       const DibaAllocator &ref)
{
    const std::vector<double> &rp = ref.power();
    const std::vector<double> &re = ref.estimates();
    ASSERT_EQ(res.power.size(), rp.size());
    ASSERT_EQ(res.estimates.size(), re.size());
    for (std::size_t i = 0; i < rp.size(); ++i) {
        if ((res.dead_mask >> res.plan.owner_of[i]) & 1)
            continue; // dead block: zeroed by the surgery
        EXPECT_EQ(std::memcmp(&res.power[i], &rp[i],
                              sizeof(double)),
                  0)
            << "survivor power bit pattern differs at node " << i;
        EXPECT_EQ(std::memcmp(&res.estimates[i], &re[i],
                              sizeof(double)),
                  0)
            << "survivor estimate bit pattern differs at node "
            << i;
    }
}

bool
killedBySignal(int status, int sig)
{
    return status >= 0 && WIFSIGNALED(status) &&
           WTERMSIG(status) == sig;
}

// ---- broker handshake deadlines (no hangs, clean errors) -------

TEST(ShardFaultTest, NeverSaysHelloFailsWithinDeadline)
{
    const auto prob = test::npbProblem(32, 170.0, 11);
    Rng topo_rng(11);
    const auto topo = makeChordalRing(32, 4, topo_rng);

    ShardRunOptions opt;
    opt.num_shards = 2;
    opt.rounds = 10;
    opt.handshake_deadline_ms = 500;
    opt.faults.handshakeDelay(1, 60000);

    const auto t0 = std::chrono::steady_clock::now();
    const auto res =
        runShardedDiba(prob, topo, DibaAllocator::Config{}, opt);
    EXPECT_LT(elapsedSeconds(t0), 10.0)
        << "a silent shard must not hang the parent";

    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("Hello"), std::string::npos)
        << res.error;
    // No zombies: every shard reaped, the sleeper killed.
    ASSERT_EQ(res.shard_status.size(), 2u);
    EXPECT_TRUE(killedBySignal(res.shard_status[1], SIGKILL))
        << "status " << res.shard_status[1];
}

TEST(ShardFaultTest, DeathBetweenHelloAndWelcomeFailsCleanly)
{
    const auto prob = test::npbProblem(32, 170.0, 11);
    Rng topo_rng(11);
    const auto topo = makeChordalRing(32, 4, topo_rng);

    ShardRunOptions opt;
    opt.num_shards = 2;
    opt.rounds = 10;
    opt.faults.exitAfterHello(1);

    const auto t0 = std::chrono::steady_clock::now();
    const auto res =
        runShardedDiba(prob, topo, DibaAllocator::Config{}, opt);
    EXPECT_LT(elapsedSeconds(t0), 10.0);

    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("shard 1"), std::string::npos)
        << res.error;
    ASSERT_EQ(res.shard_status.size(), 2u);
    EXPECT_TRUE(res.shard_status[1] >= 0 &&
                WIFEXITED(res.shard_status[1]))
        << "status " << res.shard_status[1];
}

TEST(ShardFaultTest, ResultNeverArrivesFailsWithinDeadline)
{
    const auto prob = test::npbProblem(32, 170.0, 11);
    Rng topo_rng(11);
    const auto topo = makeChordalRing(32, 4, topo_rng);

    ShardRunOptions opt;
    opt.num_shards = 2;
    opt.rounds = 10;
    opt.deadline_ms = 400;
    // Hang (not die) immediately after the handshake: only the
    // heartbeat deadline can notice this one.
    opt.faults.stallAt(1, 0, 60000);

    const auto t0 = std::chrono::steady_clock::now();
    const auto res =
        runShardedDiba(prob, topo, DibaAllocator::Config{}, opt);
    EXPECT_LT(elapsedSeconds(t0), 10.0)
        << "a hung shard must not hang the parent";

    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("hung past deadline"),
              std::string::npos)
        << res.error;
    ASSERT_EQ(res.shard_status.size(), 2u);
    EXPECT_TRUE(killedBySignal(res.shard_status[1], SIGKILL))
        << "status " << res.shard_status[1];
}

// ---- clean-run exit-status reporting ---------------------------

TEST(ShardFaultTest, CleanRunReportsZeroExitStatuses)
{
    const auto prob = test::npbProblem(32, 170.0, 11);
    Rng topo_rng(11);
    const auto topo = makeChordalRing(32, 4, topo_rng);

    ShardRunOptions opt;
    opt.num_shards = 2;
    opt.rounds = 10;

    const auto res =
        runShardedDiba(prob, topo, DibaAllocator::Config{}, opt);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.epoch, 0u);
    EXPECT_EQ(res.dead_mask, 0u);
    EXPECT_EQ(res.recoveries, 0u);
    ASSERT_EQ(res.shard_status.size(), 2u);
    for (const int st : res.shard_status) {
        EXPECT_TRUE(st >= 0 && WIFEXITED(st) &&
                    WEXITSTATUS(st) == 0)
            << "status " << st;
    }
}

// ---- SIGKILL mid-run: epoch-fenced recovery, bitwise -----------

void
runKillRecoveryCase(net::SocketTransport::Proto proto)
{
    const std::size_t n = 64;
    const std::size_t rounds = 40;
    const auto prob = test::npbProblem(n, 170.0, 5);
    Rng topo_rng(9);
    const auto topo = makeChordalRing(n, 8, topo_rng);
    const DibaAllocator::Config cfg{};

    ShardRunOptions opt;
    opt.num_shards = 2;
    opt.rounds = rounds;
    opt.proto = proto;
    opt.recover = true;
    opt.deadline_ms = 800;
    opt.faults.killAt(1, 20);

    const auto res = runShardedDiba(prob, topo, cfg, opt);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.rounds_run, rounds);
    EXPECT_EQ(res.recoveries, 1u);
    EXPECT_EQ(res.dead_mask, 1ull << 1);
    EXPECT_GE(res.epoch, 1u);
    EXPECT_DOUBLE_EQ(res.availability, 1.0);
    // The victim dies at the top of round 20 and the survivor
    // cannot outrun it past its checkpoint window.
    EXPECT_LE(res.recovery_round, 24u);
    EXPECT_GE(res.quiesce_round, res.recovery_round);
    ASSERT_EQ(res.shard_status.size(), 2u);
    EXPECT_TRUE(killedBySignal(res.shard_status[1], SIGKILL))
        << "status " << res.shard_status[1];

    const auto ref =
        recoveredReference(prob, topo, cfg, res, rounds);
    expectSurvivorsBitwise(res, ref);
}

TEST(ShardFaultTest, TwoShardUdpKillRecoversBitwise)
{
    runKillRecoveryCase(net::SocketTransport::Proto::Udp);
}

TEST(ShardFaultTest, TwoShardTcpKillRecoversBitwise)
{
    runKillRecoveryCase(net::SocketTransport::Proto::Tcp);
}

TEST(ShardFaultTest, FourShardKillRecoversBitwise)
{
    const std::size_t n = 48;
    const std::size_t rounds = 25;
    const auto prob = test::npbProblem(n, 170.0, 7);
    Rng topo_rng(3);
    const auto topo = makeChordalRing(n, 6, topo_rng);
    const DibaAllocator::Config cfg{};

    ShardRunOptions opt;
    opt.num_shards = 4;
    opt.rounds = rounds;
    opt.recover = true;
    opt.deadline_ms = 800;
    opt.faults.killAt(2, 12);

    const auto res = runShardedDiba(prob, topo, cfg, opt);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.rounds_run, rounds);
    EXPECT_EQ(res.recoveries, 1u);
    EXPECT_EQ(res.dead_mask, 1ull << 2);
    EXPECT_DOUBLE_EQ(res.availability, 1.0);
    ASSERT_EQ(res.shard_status.size(), 4u);
    EXPECT_TRUE(killedBySignal(res.shard_status[2], SIGKILL))
        << "status " << res.shard_status[2];
    for (const std::uint32_t s : {0u, 1u, 3u})
        EXPECT_TRUE(res.shard_status[s] >= 0 &&
                    WIFEXITED(res.shard_status[s]) &&
                    WEXITSTATUS(res.shard_status[s]) == 0)
            << "survivor " << s << " status "
            << res.shard_status[s];

    const auto ref =
        recoveredReference(prob, topo, cfg, res, rounds);
    expectSurvivorsBitwise(res, ref);
}

// ---- SIGKILL mid-steady-state: recovery x suppression ----------

TEST(ShardFaultTest, KillDuringSteadyStateSuppressionRecoversBitwise)
{
    // The recovery fence vs the v4 value caches: survivors hold
    // the dead peer's last delivered cut values and their own
    // last-sent XOR bases, and the epoch bump must invalidate
    // both, or the post-rollback rounds would replay stale bits.
    // A warm-start re-seed at step_round forces the suppressed
    // steady state (zero-record frames on the wire), the kill
    // lands mid-suppression, and the survivors must land bitwise
    // on the applyShardRecovery reference -- which runs dense
    // post-surgery exactly like the shards do (failed nodes
    // disable the sparse engine on both sides).
    const std::size_t n = 64;
    const std::size_t rounds = 60;
    const std::size_t step_round = 10;
    const auto prob = test::npbProblem(n, 170.0, 5);
    Rng topo_rng(9);
    const auto topo = makeChordalRing(n, 8, topo_rng);
    DibaAllocator::Config cfg;
    cfg.active_threshold = 0.25 * cfg.tolerance;
    const double delta = 0.2 * prob.budget;

    ShardRunOptions opt;
    opt.num_shards = 2;
    opt.rounds = rounds;
    opt.recover = true;
    opt.deadline_ms = 800;
    opt.budget_steps.push_back({step_round, delta});
    opt.faults.killAt(1, 35);

    const auto res = runShardedDiba(prob, topo, cfg, opt);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.rounds_run, rounds);
    EXPECT_EQ(res.recoveries, 1u);
    EXPECT_EQ(res.dead_mask, 1ull << 1);
    EXPECT_DOUBLE_EQ(res.availability, 1.0);
    ASSERT_EQ(res.shard_status.size(), 2u);
    EXPECT_TRUE(killedBySignal(res.shard_status[1], SIGKILL))
        << "status " << res.shard_status[1];
    // The kill must land inside the suppressed steady state the
    // re-seed produces (checkpoints save every round, so the
    // rollback cannot reach back past the step).
    EXPECT_GT(res.suppressed_frames, 0u);
    EXPECT_GT(res.recovery_round, step_round);

    DibaAllocator ref(topo, cfg);
    ref.reset(prob);
    for (std::uint64_t r = 0; r < res.recovery_round; ++r) {
        if (r == step_round)
            ref.warmStart(ref.result(), delta);
        ref.iterate();
    }
    applyShardRecovery(ref, res.plan, res.dead_mask, res.epoch);
    InvariantChecker checker;
    checker.check(ref);
    for (std::size_t r = res.recovery_round; r < rounds; ++r) {
        ref.iterate();
        checker.check(ref);
    }
    expectSurvivorsBitwise(res, ref);
}

// ---- SIGSTOP: slow vs hung --------------------------------------

TEST(ShardFaultTest, StallUnderDeadlineIsBitwiseInvisible)
{
    const std::size_t n = 32;
    const std::size_t rounds = 20;
    const auto prob = test::npbProblem(n, 170.0, 13);
    Rng topo_rng(13);
    const auto topo = makeChordalRing(n, 4, topo_rng);
    const DibaAllocator::Config cfg{};

    ShardRunOptions opt;
    opt.num_shards = 2;
    opt.rounds = rounds;
    opt.recover = true;
    opt.deadline_ms = 5000;
    opt.faults.stallAt(1, 8, 250);

    const auto res = runShardedDiba(prob, topo, cfg, opt);
    ASSERT_TRUE(res.ok) << res.error;
    // Merely slow: no death, no epoch change, exact trajectory.
    EXPECT_EQ(res.recoveries, 0u);
    EXPECT_EQ(res.dead_mask, 0u);
    EXPECT_EQ(res.epoch, 0u);

    const auto ref = referenceRun(prob, topo, cfg, rounds);
    expectBitwiseEqual(res.power, ref.power(), "stalled power");
    expectBitwiseEqual(res.estimates, ref.estimates(),
                       "stalled estimates");
}

TEST(ShardFaultTest, StallPastDeadlineRecoversLikeAKill)
{
    const std::size_t n = 32;
    const std::size_t rounds = 20;
    const auto prob = test::npbProblem(n, 170.0, 13);
    Rng topo_rng(13);
    const auto topo = makeChordalRing(n, 4, topo_rng);
    const DibaAllocator::Config cfg{};

    ShardRunOptions opt;
    opt.num_shards = 2;
    opt.rounds = rounds;
    opt.recover = true;
    opt.deadline_ms = 500;
    opt.faults.stallAt(1, 8, 60000);

    const auto t0 = std::chrono::steady_clock::now();
    const auto res = runShardedDiba(prob, topo, cfg, opt);
    EXPECT_LT(elapsedSeconds(t0), 20.0);

    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.recoveries, 1u);
    EXPECT_EQ(res.dead_mask, 1ull << 1);
    EXPECT_DOUBLE_EQ(res.availability, 1.0);
    ASSERT_EQ(res.shard_status.size(), 2u);
    EXPECT_TRUE(killedBySignal(res.shard_status[1], SIGKILL))
        << "status " << res.shard_status[1];

    const auto ref =
        recoveredReference(prob, topo, cfg, res, rounds);
    expectSurvivorsBitwise(res, ref);
}

// ---- blackhole: retransmits heal it, stats record it -----------

TEST(ShardFaultTest, BlackholeHealsViaRetransmitsBitwise)
{
    const std::size_t n = 32;
    const std::size_t rounds = 20;
    const auto prob = test::npbProblem(n, 170.0, 17);
    Rng topo_rng(17);
    const auto topo = makeChordalRing(n, 4, topo_rng);
    const DibaAllocator::Config cfg{};

    ShardRunOptions opt;
    opt.num_shards = 2;
    opt.rounds = rounds;
    opt.retrans_ms = 5;
    opt.deadline_ms = 5000;
    opt.faults.blackholeAt(0, 1, 5, 150);

    const auto res = runShardedDiba(prob, topo, cfg, opt);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.recoveries, 0u);
    EXPECT_EQ(res.dead_mask, 0u);
    EXPECT_GT(res.gaveup_frames, 0u)
        << "the blackhole must have eaten at least one send";

    const auto ref = referenceRun(prob, topo, cfg, rounds);
    expectBitwiseEqual(res.power, ref.power(),
                       "blackholed power");
    expectBitwiseEqual(res.estimates, ref.estimates(),
                       "blackholed estimates");
}

// ---- SocketTransport construction validation -------------------

net::SocketTransport::Config
tinyTransportConfig()
{
    net::SocketTransport::Config cfg;
    cfg.shard_id = 0;
    cfg.num_shards = 1;
    cfg.owner_of = {0};
    return cfg;
}

TEST(ShardFaultDeathTest, RejectsNonPositiveRetransTick)
{
    auto cfg = tinyTransportConfig();
    cfg.retrans_ms = 0;
    EXPECT_DEATH(net::SocketTransport t(std::move(cfg)),
                 "retrans_ms");
}

TEST(ShardFaultDeathTest, RejectsUselesslySmallDatagramBudget)
{
    auto cfg = tinyTransportConfig();
    cfg.datagram_budget = net::kMinFrameSize - 1;
    EXPECT_DEATH(net::SocketTransport t(std::move(cfg)),
                 "datagram_budget");
}

} // namespace
} // namespace dpc
