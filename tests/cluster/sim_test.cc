#include <gtest/gtest.h>

#include "alloc/centralized.hh"
#include "alloc/primal_dual.hh"
#include "cluster/sim.hh"
#include "graph/topologies.hh"
#include "util/stats.hh"

namespace dpc {
namespace {

ClusterSim
makeSim(std::size_t n, double budget_per_node, ClusterSimConfig cfg)
{
    Rng rng(7);
    auto assignment = drawNpbAssignment(n, rng);
    return ClusterSim(std::move(assignment), makeRing(n),
                      budget_per_node * static_cast<double>(n),
                      DibaAllocator::Config(), cfg);
}

ClusterSim
makeSim(std::size_t n, double budget_per_node,
        ClusterSim::Options opts)
{
    Rng rng(7);
    auto assignment = drawNpbAssignment(n, rng);
    return ClusterSim(std::move(assignment), makeRing(n),
                      budget_per_node * static_cast<double>(n),
                      DibaAllocator::Config(), std::move(opts));
}

TEST(ClusterSimTest, RunsAndRecordsSamples)
{
    ClusterSimConfig cfg;
    auto sim = makeSim(32, 170.0, cfg);
    const auto samples = sim.run(20.0);
    ASSERT_EQ(samples.size(), 20u);
    for (const auto &s : samples) {
        EXPECT_GT(s.snp, 0.0);
        EXPECT_LE(s.snp, 1.0 + 1e-9);
        EXPECT_GT(s.consumed_power, 0.0);
    }
}

TEST(ClusterSimTest, AllocatedPowerStaysUnderBudget)
{
    ClusterSimConfig cfg;
    auto sim = makeSim(32, 168.0, cfg);
    const auto samples = sim.run(30.0);
    for (const auto &s : samples)
        EXPECT_LT(s.allocated_power, s.budget);
}

TEST(ClusterSimTest, BudgetScheduleIsFollowed)
{
    const double hi = 32 * 180.0;
    const double lo = 32 * 160.0;
    auto sim = makeSim(
        32, 170.0,
        ClusterSim::Options{
            .budget_schedule =
                [=](double t) { return t < 10.0 ? hi : lo; },
        });
    const auto samples = sim.run(20.0);
    EXPECT_DOUBLE_EQ(samples[5].budget, hi);
    EXPECT_DOUBLE_EQ(samples[15].budget, lo);
    // Power tracks the drop without overshoot.
    for (std::size_t i = 11; i < 20; ++i)
        EXPECT_LT(samples[i].allocated_power, lo);
}

TEST(ClusterSimTest, WarmStartModeFollowsTheSameSchedule)
{
    const double hi = 32 * 180.0;
    const double lo = 32 * 160.0;
    const auto schedule = [=](double t) {
        return t < 10.0 ? hi : lo;
    };

    ClusterSimConfig warm_cfg;
    warm_cfg.warm_start = true;
    auto warm = makeSim(32, 170.0,
                        ClusterSim::Options{
                            .sim = warm_cfg,
                            .budget_schedule = schedule,
                        });
    const auto ws = warm.run(20.0);

    // The warm-started control loop honors the same guarantees as
    // the cold announce path: the schedule is followed and the cap
    // never violated, before or after the step.
    EXPECT_DOUBLE_EQ(ws[5].budget, hi);
    EXPECT_DOUBLE_EQ(ws[15].budget, lo);
    for (const auto &s : ws)
        EXPECT_LT(s.allocated_power, s.budget);
    // And the post-step plateau performs as well as a cold solve
    // of the same schedule.
    auto cold = makeSim(32, 170.0,
                        ClusterSim::Options{
                            .budget_schedule = schedule,
                        });
    const auto cs = cold.run(20.0);
    EXPECT_GT(ws[19].snp, cs[19].snp - 0.02);
}

TEST(ClusterSimTest, SnpRecoversAfterBudgetDrop)
{
    const double hi = 48 * 185.0;
    const double lo = 48 * 165.0;
    auto sim = makeSim(
        48, 175.0,
        ClusterSim::Options{
            .budget_schedule =
                [=](double t) { return t < 15.0 ? hi : lo; },
        });
    const auto samples = sim.run(40.0);
    // SNP at the lower budget settles below the high-budget SNP
    // but stays reasonable.
    const double snp_hi = samples[14].snp;
    const double snp_lo = samples[39].snp;
    EXPECT_LT(snp_lo, snp_hi);
    EXPECT_GT(snp_lo, 0.6);
}

TEST(ClusterSimTest, DibaBeatsUniformOnHeterogeneousMix)
{
    ClusterSimConfig diba_cfg;
    auto diba_sim = makeSim(64, 170.0, diba_cfg);
    const auto diba_samples = diba_sim.run(30.0);

    ClusterSimConfig uni_cfg;
    uni_cfg.policy = SimPolicy::Uniform;
    auto uni_sim = makeSim(64, 170.0, uni_cfg);
    const auto uni_samples = uni_sim.run(30.0);

    // Compare steady-state SNP (last 10 samples).
    double diba_snp = 0.0, uni_snp = 0.0;
    for (std::size_t i = 20; i < 30; ++i) {
        diba_snp += diba_samples[i].snp;
        uni_snp += uni_samples[i].snp;
    }
    EXPECT_GT(diba_snp, uni_snp * 1.02);
}

TEST(ClusterSimTest, ChurnReplacesWorkloads)
{
    ClusterSimConfig cfg;
    cfg.mean_job_s = 5.0;
    auto sim = makeSim(32, 170.0, cfg);
    const auto names_before = sim.workloadNames();
    sim.run(60.0);
    const auto names_after = sim.workloadNames();
    std::size_t changed = 0;
    for (std::size_t i = 0; i < names_before.size(); ++i)
        changed += names_before[i] != names_after[i] ? 1 : 0;
    // With 5 s mean jobs over 60 s, most servers churned at least
    // once (some may have drawn the same benchmark again).
    EXPECT_GT(changed, 10u);
}

TEST(ClusterSimTest, ChurnKeepsBudgetGuarantee)
{
    ClusterSimConfig cfg;
    cfg.mean_job_s = 4.0;
    auto sim = makeSim(32, 168.0, cfg);
    const auto samples = sim.run(60.0);
    for (const auto &s : samples)
        EXPECT_LT(s.allocated_power, s.budget);
}

TEST(ClusterSimTest, CoordinatorSchemesDriveTheSameLoop)
{
    // The stepwise protocol lets the coordinator baselines run in
    // the identical control loop DiBA uses.
    Rng rng(7);
    auto assignment = drawNpbAssignment(24, rng);
    ClusterSimConfig cfg;
    ClusterSim pd_sim(assignment,
                      std::make_unique<PrimalDualAllocator>(),
                      24 * 170.0, cfg);
    ClusterSim ce_sim(std::move(assignment),
                      std::make_unique<CentralizedAllocator>(),
                      24 * 170.0, cfg);
    const auto pd_samples = pd_sim.run(10.0);
    const auto ce_samples = ce_sim.run(10.0);
    ASSERT_EQ(pd_samples.size(), 10u);
    ASSERT_EQ(ce_samples.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_LE(pd_samples[i].allocated_power,
                  pd_samples[i].budget + 1e-6);
        EXPECT_LE(ce_samples[i].allocated_power,
                  ce_samples[i].budget + 1e-6);
        EXPECT_GT(pd_samples[i].snp, 0.0);
        EXPECT_GT(ce_samples[i].snp, 0.0);
    }
    EXPECT_EQ(pd_sim.allocator().name(), "primal-dual");
    EXPECT_EQ(ce_sim.allocator().name(), "centralized");
}

TEST(ClusterSimFaultTest, ChurnUnderLossyGossipKeepsGuarantees)
{
    const std::size_t n = 32;
    Rng rng(7);
    auto assignment = drawNpbAssignment(n, rng);
    Rng topo_rng(8);
    FaultPlan plan;
    LossyChannel::Config loss;
    loss.drop_rate = 0.15;
    plan.loss(loss)
        .crashAt(3.0, 5)
        .crashAt(6.0, 11)
        .rejoinAt(12.0, 5);
    ClusterSim sim(std::move(assignment),
                   makeChordalRing(n, 10, topo_rng), n * 170.0,
                   DibaAllocator::Config(),
                   ClusterSim::Options{.fault_plan = plan});

    const auto samples = sim.run(20.0);
    ASSERT_EQ(samples.size(), 20u);
    for (const auto &s : samples)
        EXPECT_LT(s.allocated_power, s.budget);
    EXPECT_TRUE(sim.diba().isActive(5));   // rejoined
    EXPECT_FALSE(sim.diba().isActive(11)); // still down
    EXPECT_EQ(sim.diba().numActive(), n - 1);
    // One audit per control step, all passed (or we would have
    // panicked), through real transport loss.
    EXPECT_EQ(sim.faultChecker().roundsChecked(), 20u);
    EXPECT_GT(sim.diba().totalPower(), 0.0);
}

TEST(ClusterSimRecoveryTest, SelfHealingModeClosesTheLoop)
{
    // Same churn as the omniscient fault test, but the events only
    // mutate the ground-truth world: the control loop must discover
    // them from missed pairs, evict and re-admit the nodes itself,
    // and keep every sample under budget throughout.
    const std::size_t n = 32;
    Rng rng(7);
    auto assignment = drawNpbAssignment(n, rng);
    Rng topo_rng(8);
    FaultPlan plan;
    LossyChannel::Config loss;
    loss.drop_rate = 0.10;
    plan.loss(loss)
        .crashAt(3.0, 5)
        .crashAt(6.0, 11)
        .rejoinAt(12.0, 5)
        .meterGlitchAt(8.0, 2, 0.3, 2.0);
    ClusterSim sim(std::move(assignment),
                   makeChordalRing(n, 10, topo_rng), n * 170.0,
                   DibaAllocator::Config(),
                   ClusterSim::Options{.recovery_plan = plan});

    const auto samples = sim.run(20.0);
    ASSERT_EQ(samples.size(), 20u);
    for (const auto &s : samples)
        EXPECT_LT(s.allocated_power, s.budget);
    EXPECT_TRUE(sim.diba().isActive(5));   // rejoined via verdicts
    EXPECT_FALSE(sim.diba().isActive(11)); // evicted via verdicts
    EXPECT_EQ(sim.diba().numActive(), n - 1);

    const RecoveryReport &rep = sim.recoveryReport();
    EXPECT_EQ(rep.nodes_failed, 2u);
    EXPECT_EQ(rep.nodes_rejoined, 1u);
    EXPECT_EQ(rep.events_applied, 3u);
    // The MeterGlitch stays a control-loop concern: the recovery
    // session skips it and the sim's own timeline applies it.
    EXPECT_EQ(sim.faultEventsSkipped(), 0u);
    // Every DiBA round inside every control step was audited.
    EXPECT_EQ(sim.recovery().checker().roundsChecked(),
              rep.rounds);
    EXPECT_EQ(rep.rounds, 20u * 60u);
}

TEST(ClusterSimFaultTest, MeterGlitchBiasesOnlyItsWindow)
{
    // Twin simulations differing only in one MeterGlitch event:
    // the channel consumes no draws for glitches, so the allocator
    // trajectories are identical and any divergence is the cap
    // controller reacting to the corrupted reading.
    auto makeGlitchSim = [](bool with_glitch) {
        Rng rng(7);
        auto assignment = drawNpbAssignment(16, rng);
        FaultPlan plan;
        if (with_glitch) {
            // Every node reads 40% high for 4 s starting at t = 6
            // (nodes already parked at the p-state floor cannot
            // throttle further, so the whole-cluster glitch makes
            // the effect robustly observable).
            for (std::size_t i = 0; i < 16; ++i)
                plan.meterGlitchAt(6.0, i, 0.4, 4.0);
        }
        return ClusterSim(std::move(assignment), makeRing(16),
                          16 * 170.0, DibaAllocator::Config(),
                          ClusterSim::Options{.fault_plan = plan});
    };
    auto glitched = makeGlitchSim(true);
    auto clean = makeGlitchSim(false);
    const auto gs = glitched.run(14.0);
    const auto cs = clean.run(14.0);
    ASSERT_EQ(gs.size(), cs.size());
    // Identical before the window...
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_DOUBLE_EQ(gs[i].consumed_power,
                         cs[i].consumed_power);
    // ...and the inflated reading makes the glitched node's
    // controller throttle inside it.
    double in_window_delta = 0.0;
    for (std::size_t i = 7; i < 10; ++i)
        in_window_delta +=
            cs[i].consumed_power - gs[i].consumed_power;
    EXPECT_GT(in_window_delta, 1.0);
}

TEST(ClusterSimTest, CapObserverSeesEveryStep)
{
    std::size_t calls = 0;
    auto sim = makeSim(
        16, 170.0,
        ClusterSim::Options{
            .cap_observer =
                [&](double, const std::vector<double> &caps) {
                    ++calls;
                    EXPECT_EQ(caps.size(), 16u);
                },
        });
    sim.run(12.0);
    EXPECT_EQ(calls, 12u);
}

} // namespace
} // namespace dpc
