#include <gtest/gtest.h>

#include "cluster/sim.hh"
#include "graph/topologies.hh"
#include "util/stats.hh"

namespace dpc {
namespace {

ClusterSim
makeSim(std::size_t n, double budget_per_node, ClusterSimConfig cfg)
{
    Rng rng(7);
    auto assignment = drawNpbAssignment(n, rng);
    return ClusterSim(std::move(assignment), makeRing(n),
                      budget_per_node * static_cast<double>(n),
                      DibaAllocator::Config(), cfg);
}

TEST(ClusterSimTest, RunsAndRecordsSamples)
{
    ClusterSimConfig cfg;
    auto sim = makeSim(32, 170.0, cfg);
    const auto samples = sim.run(20.0);
    ASSERT_EQ(samples.size(), 20u);
    for (const auto &s : samples) {
        EXPECT_GT(s.snp, 0.0);
        EXPECT_LE(s.snp, 1.0 + 1e-9);
        EXPECT_GT(s.consumed_power, 0.0);
    }
}

TEST(ClusterSimTest, AllocatedPowerStaysUnderBudget)
{
    ClusterSimConfig cfg;
    auto sim = makeSim(32, 168.0, cfg);
    const auto samples = sim.run(30.0);
    for (const auto &s : samples)
        EXPECT_LT(s.allocated_power, s.budget);
}

TEST(ClusterSimTest, BudgetScheduleIsFollowed)
{
    ClusterSimConfig cfg;
    auto sim = makeSim(32, 170.0, cfg);
    const double hi = 32 * 180.0;
    const double lo = 32 * 160.0;
    sim.setBudgetSchedule(
        [=](double t) { return t < 10.0 ? hi : lo; });
    const auto samples = sim.run(20.0);
    EXPECT_DOUBLE_EQ(samples[5].budget, hi);
    EXPECT_DOUBLE_EQ(samples[15].budget, lo);
    // Power tracks the drop without overshoot.
    for (std::size_t i = 11; i < 20; ++i)
        EXPECT_LT(samples[i].allocated_power, lo);
}

TEST(ClusterSimTest, SnpRecoversAfterBudgetDrop)
{
    ClusterSimConfig cfg;
    auto sim = makeSim(48, 175.0, cfg);
    const double hi = 48 * 185.0;
    const double lo = 48 * 165.0;
    sim.setBudgetSchedule(
        [=](double t) { return t < 15.0 ? hi : lo; });
    const auto samples = sim.run(40.0);
    // SNP at the lower budget settles below the high-budget SNP
    // but stays reasonable.
    const double snp_hi = samples[14].snp;
    const double snp_lo = samples[39].snp;
    EXPECT_LT(snp_lo, snp_hi);
    EXPECT_GT(snp_lo, 0.6);
}

TEST(ClusterSimTest, DibaBeatsUniformOnHeterogeneousMix)
{
    ClusterSimConfig diba_cfg;
    auto diba_sim = makeSim(64, 170.0, diba_cfg);
    const auto diba_samples = diba_sim.run(30.0);

    ClusterSimConfig uni_cfg;
    uni_cfg.policy = SimPolicy::Uniform;
    auto uni_sim = makeSim(64, 170.0, uni_cfg);
    const auto uni_samples = uni_sim.run(30.0);

    // Compare steady-state SNP (last 10 samples).
    double diba_snp = 0.0, uni_snp = 0.0;
    for (std::size_t i = 20; i < 30; ++i) {
        diba_snp += diba_samples[i].snp;
        uni_snp += uni_samples[i].snp;
    }
    EXPECT_GT(diba_snp, uni_snp * 1.02);
}

TEST(ClusterSimTest, ChurnReplacesWorkloads)
{
    ClusterSimConfig cfg;
    cfg.mean_job_s = 5.0;
    auto sim = makeSim(32, 170.0, cfg);
    const auto names_before = sim.workloadNames();
    sim.run(60.0);
    const auto names_after = sim.workloadNames();
    std::size_t changed = 0;
    for (std::size_t i = 0; i < names_before.size(); ++i)
        changed += names_before[i] != names_after[i] ? 1 : 0;
    // With 5 s mean jobs over 60 s, most servers churned at least
    // once (some may have drawn the same benchmark again).
    EXPECT_GT(changed, 10u);
}

TEST(ClusterSimTest, ChurnKeepsBudgetGuarantee)
{
    ClusterSimConfig cfg;
    cfg.mean_job_s = 4.0;
    auto sim = makeSim(32, 168.0, cfg);
    const auto samples = sim.run(60.0);
    for (const auto &s : samples)
        EXPECT_LT(s.allocated_power, s.budget);
}

TEST(ClusterSimTest, CapObserverSeesEveryStep)
{
    ClusterSimConfig cfg;
    auto sim = makeSim(16, 170.0, cfg);
    std::size_t calls = 0;
    sim.setCapObserver(
        [&](double, const std::vector<double> &caps) {
            ++calls;
            EXPECT_EQ(caps.size(), 16u);
        });
    sim.run(12.0);
    EXPECT_EQ(calls, 12u);
}

} // namespace
} // namespace dpc
