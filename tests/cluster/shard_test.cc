#include <gtest/gtest.h>

#include <cstring>

#include "cluster/shard.hh"
#include "graph/topologies.hh"
#include "net/transport.hh"
#include "tests/alloc/test_problems.hh"

namespace dpc {
namespace {

using cluster::ShardRunOptions;
using cluster::makeShardPlan;
using cluster::runShardedDiba;

void
expectBitwiseEqual(const std::vector<double> &a,
                   const std::vector<double> &b, const char *what)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i], b[i]) << what << " index " << i;
        EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
            << what << " bit pattern differs at index " << i;
    }
}

/** Single-process reference trajectory: the identical rounds over
 * the identity loopback (pinned bitwise to plain iterate()). */
DibaAllocator
referenceRun(const AllocationProblem &prob, const Graph &topo,
             const DibaAllocator::Config &cfg, std::size_t rounds)
{
    DibaAllocator alloc(topo, cfg);
    alloc.reset(prob);
    net::LoopbackTransport loopback;
    for (std::size_t r = 0; r < rounds; ++r)
        alloc.stepWithTransport(loopback);
    return alloc;
}

TEST(ShardPlanTest, BlocksPartitionAndCutsAreCounted)
{
    Rng topo_rng(5);
    const auto topo = makeChordalRing(64, 8, topo_rng);
    DibaAllocator alloc(topo, DibaAllocator::Config{});

    const auto plan = makeShardPlan(alloc, 4);
    ASSERT_EQ(plan.num_shards, 4u);
    ASSERT_EQ(plan.block_begin.size(), 4u);
    ASSERT_EQ(plan.block_end.size(), 4u);
    EXPECT_EQ(plan.block_begin[0], 0u);
    EXPECT_EQ(plan.block_end[3], 64u);
    for (std::size_t s = 1; s < 4; ++s)
        EXPECT_EQ(plan.block_begin[s], plan.block_end[s - 1]);
    ASSERT_EQ(plan.owner_of.size(), 64u);
    // Every node owned by exactly one shard; block sizes add up.
    std::vector<std::size_t> owned(4, 0);
    for (const auto s : plan.owner_of) {
        ASSERT_LT(s, 4u);
        ++owned[s];
    }
    for (std::size_t s = 0; s < 4; ++s)
        EXPECT_EQ(owned[s], plan.block_end[s] - plan.block_begin[s]);
    // A connected overlay split 4 ways must cut something, but the
    // locality layout keeps it well below all of it.
    EXPECT_GT(plan.cut_edges, 0u);
    EXPECT_LT(plan.cut_edges, plan.total_edges);
    EXPECT_GT(plan.cutFraction(), 0.0);

    // Deterministic: a second allocator from the same inputs plans
    // identically (parent and forked children rely on this).
    DibaAllocator twin(topo, DibaAllocator::Config{});
    const auto replay = makeShardPlan(twin, 4);
    EXPECT_EQ(replay.owner_of, plan.owner_of);
    EXPECT_EQ(replay.cut_edges, plan.cut_edges);
}

TEST(ShardProcessTest, TwoShardUdpMatchesSingleProcessBitwise)
{
    const std::size_t n = 64, rounds = 40;
    const auto prob = test::npbProblem(n, 170.0, 5);
    Rng topo_rng(9);
    const auto topo = makeChordalRing(n, 8, topo_rng);
    const DibaAllocator::Config cfg{};

    ShardRunOptions opt;
    opt.num_shards = 2;
    opt.rounds = rounds;
    opt.proto = net::SocketTransport::Proto::Udp;
    const auto sharded = runShardedDiba(prob, topo, cfg, opt);
    EXPECT_EQ(sharded.rounds_run, rounds);
    EXPECT_GT(sharded.wire_frames, 0u);
    EXPECT_GT(sharded.wire_bytes, 0u);

    const auto ref = referenceRun(prob, topo, cfg, rounds);
    expectBitwiseEqual(ref.power(), sharded.power, "power");
    expectBitwiseEqual(ref.estimates(), sharded.estimates,
                       "estimate");
}

TEST(ShardProcessTest, FourShardTcpMatchesSingleProcessBitwise)
{
    const std::size_t n = 48, rounds = 25;
    const auto prob = test::npbProblem(n, 170.0, 7);
    Rng topo_rng(3);
    const auto topo = makeChordalRing(n, 6, topo_rng);
    const DibaAllocator::Config cfg{};

    ShardRunOptions opt;
    opt.num_shards = 4;
    opt.rounds = rounds;
    opt.proto = net::SocketTransport::Proto::Tcp;
    const auto sharded = runShardedDiba(prob, topo, cfg, opt);
    EXPECT_EQ(sharded.rounds_run, rounds);
    // TCP is reliable: a clean loopback run never retransmits.
    EXPECT_EQ(sharded.retransmits, 0u);

    const auto ref = referenceRun(prob, topo, cfg, rounds);
    expectBitwiseEqual(ref.power(), sharded.power, "power");
    expectBitwiseEqual(ref.estimates(), sharded.estimates,
                       "estimate");
}

TEST(ShardProcessTest, OverlapOffMatchesSingleProcessBitwise)
{
    // The compute/communication overlap schedule must be a pure
    // reordering: overlap off (serialized drain-then-compute) and
    // the single-process reference pin the same bits, so together
    // with TwoShardUdpMatchesSingleProcessBitwise this pins
    // overlap-on == overlap-off.
    const std::size_t n = 64, rounds = 40;
    const auto prob = test::npbProblem(n, 170.0, 5);
    Rng topo_rng(9);
    const auto topo = makeChordalRing(n, 8, topo_rng);
    const DibaAllocator::Config cfg{};

    ShardRunOptions opt;
    opt.num_shards = 2;
    opt.rounds = rounds;
    opt.proto = net::SocketTransport::Proto::Udp;
    opt.overlap = false;
    const auto sharded = runShardedDiba(prob, topo, cfg, opt);

    const auto ref = referenceRun(prob, topo, cfg, rounds);
    expectBitwiseEqual(ref.power(), sharded.power, "power");
    expectBitwiseEqual(ref.estimates(), sharded.estimates,
                       "estimate");
}

TEST(ShardProcessTest, TinyDatagramBudgetSplitsBatchesBitwise)
{
    // A 64-byte budget forces every round's cut traffic into many
    // partial batches (the fixed seq-0 part alone exceeds it, and
    // every follow-up batch carries a single record); parity must
    // survive the splits and the frame count must show them.
    const std::size_t n = 64, rounds = 30;
    const auto prob = test::npbProblem(n, 170.0, 5);
    Rng topo_rng(9);
    const auto topo = makeChordalRing(n, 8, topo_rng);
    const DibaAllocator::Config cfg{};

    ShardRunOptions opt;
    opt.num_shards = 2;
    opt.rounds = rounds;
    opt.proto = net::SocketTransport::Proto::Udp;
    opt.datagram_budget = 64;
    const auto split = runShardedDiba(prob, topo, cfg, opt);

    opt.datagram_budget = 1400;
    const auto whole = runShardedDiba(prob, topo, cfg, opt);
    EXPECT_GT(split.wire_frames, whole.wire_frames);

    const auto ref = referenceRun(prob, topo, cfg, rounds);
    expectBitwiseEqual(ref.power(), split.power, "power");
    expectBitwiseEqual(ref.estimates(), split.estimates,
                       "estimate");
}

/** Fixed-lag reference transport for the bounded-staleness mode:
 * every cut pair (endpoints in different plan blocks) delivers at
 * lag `depth`, everything else fresh -- the single-process
 * trajectory a depth-d sharded run must reproduce bitwise. */
class FixedLagCutTransport final : public net::Transport
{
  public:
    FixedLagCutTransport(std::vector<std::uint32_t> owner_of,
                         std::uint32_t depth)
        : owner_(std::move(owner_of)), depth_(depth)
    {
    }

    void beginRound(std::uint64_t, std::size_t) override
    {
        q_.clear();
        head_ = 0;
    }

    void send(const net::EdgePair &pair) override
    {
        net::Delivery d;
        d.pair = pair;
        d.fate.delivered = true;
        d.fate.lag =
            owner_[pair.u] != owner_[pair.v] ? depth_ : 0;
        q_.push_back(d);
    }

    bool poll(net::Delivery &out) override
    {
        if (head_ >= q_.size())
            return false;
        out = q_[head_++];
        return true;
    }

    std::size_t maxLag() const override { return depth_; }

  private:
    std::vector<std::uint32_t> owner_;
    std::uint32_t depth_;
    std::vector<net::Delivery> q_;
    std::size_t head_ = 0;
};

TEST(ShardProcessTest, PipelineDepthMatchesFixedLagReference)
{
    // Bounded staleness: at pipeline_depth d every cut pair runs
    // at fixed lag d on BOTH endpoints (antisymmetry preserved),
    // so the sharded trajectory must equal a single-process run
    // whose transport lags exactly the cut pairs by d.
    const std::size_t n = 64, rounds = 35;
    const auto prob = test::npbProblem(n, 170.0, 5);
    Rng topo_rng(9);
    const auto topo = makeChordalRing(n, 8, topo_rng);
    const DibaAllocator::Config cfg{};

    DibaAllocator planner(topo, cfg);
    const auto plan = makeShardPlan(planner, 2);

    for (const std::uint32_t depth : {1u, 2u}) {
        ShardRunOptions opt;
        opt.num_shards = 2;
        opt.rounds = rounds;
        opt.proto = net::SocketTransport::Proto::Udp;
        opt.pipeline_depth = depth;
        const auto sharded = runShardedDiba(prob, topo, cfg, opt);

        DibaAllocator ref(topo, cfg);
        ref.reset(prob);
        FixedLagCutTransport lagged(plan.owner_of, depth);
        for (std::size_t r = 0; r < rounds; ++r)
            ref.stepWithTransport(lagged);

        expectBitwiseEqual(ref.power(), sharded.power, "power");
        expectBitwiseEqual(ref.estimates(), sharded.estimates,
                           "estimate");
    }
}

TEST(ShardSparseTest, ActiveSetTwoShardUdpMatchesIterateBitwise)
{
    // The steady-state tentpole's central pin: a positive
    // active_threshold routes the sharded rounds through the
    // sparse transport round (delta-suppressed frames + the wake
    // channel), and the result must equal the single-process
    // active-set engine -- plain iterate() -- bit for bit, round
    // for round, including long-quiesced stretches.
    const std::size_t n = 96, rounds = 400;
    const auto prob = test::npbProblem(n, 170.0, 5);
    Rng topo_rng(9);
    const auto topo = makeChordalRing(n, 8, topo_rng);
    DibaAllocator::Config cfg;
    cfg.active_threshold = 0.25 * cfg.tolerance;

    ShardRunOptions opt;
    opt.num_shards = 2;
    opt.rounds = rounds;
    opt.proto = net::SocketTransport::Proto::Udp;
    const auto sharded = runShardedDiba(prob, topo, cfg, opt);
    ASSERT_TRUE(sharded.ok) << sharded.error;

    DibaAllocator ref(topo, cfg);
    ref.reset(prob);
    ASSERT_TRUE(ref.sparseEngineActive());
    for (std::size_t r = 0; r < rounds; ++r)
        ref.iterate();

    expectBitwiseEqual(ref.power(), sharded.power, "power");
    expectBitwiseEqual(ref.estimates(), sharded.estimates,
                       "estimate");
    // A quarter-tolerance threshold keeps a sub-tolerance residual
    // tail oscillating for thousands of rounds -- the demanding
    // parity regime -- so full suppression is not expected here
    // (see FullyQuiescedBoundaryShipsSuppressedFrames); but the
    // delta path and the wake channel must both have carried real
    // traffic while the frontier narrowed.
    EXPECT_GT(sharded.delta_frames, 0u);
    EXPECT_GT(sharded.wake_messages, 0u);
}

TEST(ShardSparseTest, FullyQuiescedBoundaryShipsSuppressedFrames)
{
    // At 4x tolerance the frontier fully drains (empirically round
    // ~1700 on this problem); from there every sparse round's cut
    // values are bit-identical, so every peer-round must collapse
    // to one suppressed seq-0 frame -- and the trajectory still
    // pins the single-process active-set engine bitwise.
    const std::size_t n = 96, rounds = 2000;
    const auto prob = test::npbProblem(n, 170.0, 5);
    Rng topo_rng(9);
    const auto topo = makeChordalRing(n, 8, topo_rng);
    DibaAllocator::Config cfg;
    cfg.active_threshold = 4.0 * cfg.tolerance;

    ShardRunOptions opt;
    opt.num_shards = 2;
    opt.rounds = rounds;
    opt.proto = net::SocketTransport::Proto::Udp;
    const auto sharded = runShardedDiba(prob, topo, cfg, opt);
    ASSERT_TRUE(sharded.ok) << sharded.error;

    DibaAllocator ref(topo, cfg);
    ref.reset(prob);
    for (std::size_t r = 0; r < rounds; ++r)
        ref.iterate();
    ASSERT_EQ(ref.frontierHotCount(), 0u)
        << "reference never quiesced: the suppression assertions "
           "below would be vacuous";

    expectBitwiseEqual(ref.power(), sharded.power, "power");
    expectBitwiseEqual(ref.estimates(), sharded.estimates,
                       "estimate");
    EXPECT_GT(sharded.suppressed_frames, 0u);
    EXPECT_GT(sharded.delta_frames, 0u);
    EXPECT_GT(sharded.wake_messages, 0u);
}

TEST(ShardSparseTest, ThresholdZeroKeepsTheDenseShardedPath)
{
    // Structural pin: active_threshold == 0 must leave the sharded
    // rounds on the dense PR 8 transport path (the sparse round is
    // gated on a STRICTLY positive threshold), bitwise equal to
    // the dense loopback reference -- on the v4 wire (whose delta
    // framing then applies to the dense rounds) AND forced down to
    // v3 through the broker's version negotiation, where the v4
    // sparsity counters must all stay zero.
    const std::size_t n = 64, rounds = 40;
    const auto prob = test::npbProblem(n, 170.0, 5);
    Rng topo_rng(9);
    const auto topo = makeChordalRing(n, 8, topo_rng);
    DibaAllocator::Config cfg;
    cfg.active_threshold = 0.0;

    const auto ref = referenceRun(prob, topo, cfg, rounds);
    for (const std::uint16_t version :
         {net::kWireVersion, net::kWireMinVersion}) {
        ShardRunOptions opt;
        opt.num_shards = 2;
        opt.rounds = rounds;
        opt.proto = net::SocketTransport::Proto::Udp;
        opt.wire_version = version;
        const auto sharded = runShardedDiba(prob, topo, cfg, opt);
        ASSERT_TRUE(sharded.ok) << sharded.error;
        expectBitwiseEqual(ref.power(), sharded.power, "power");
        expectBitwiseEqual(ref.estimates(), sharded.estimates,
                           "estimate");
        if (version < 4) {
            EXPECT_EQ(sharded.suppressed_frames, 0u);
            EXPECT_EQ(sharded.delta_frames, 0u);
            EXPECT_EQ(sharded.wake_messages, 0u);
        }
    }
}

TEST(ShardSparseTest, WarmStartedBudgetStepMatchesSingleProcess)
{
    // Warm-started sharded steps: every shard applies the same
    // warmStart(result(), delta) at the same round boundary; on a
    // quadratic cluster the re-seed is per-node static arithmetic,
    // so the sharded trajectory through converge -> step ->
    // reconverge must equal the single-process active-set run
    // given the identical warmStart at the identical round.
    const std::size_t n = 96, rounds = 400, step_round = 200;
    const auto prob = test::npbProblem(n, 170.0, 5);
    Rng topo_rng(9);
    const auto topo = makeChordalRing(n, 8, topo_rng);
    DibaAllocator::Config cfg;
    cfg.active_threshold = 0.25 * cfg.tolerance;
    const double delta = 0.2 * prob.budget;

    ShardRunOptions opt;
    opt.num_shards = 2;
    opt.rounds = rounds;
    opt.proto = net::SocketTransport::Proto::Udp;
    opt.budget_steps.push_back({step_round, delta});
    const auto sharded = runShardedDiba(prob, topo, cfg, opt);
    ASSERT_TRUE(sharded.ok) << sharded.error;

    DibaAllocator ref(topo, cfg);
    ref.reset(prob);
    for (std::size_t r = 0; r < rounds; ++r) {
        if (r == step_round)
            ref.warmStart(ref.result(), delta);
        ref.iterate();
    }

    expectBitwiseEqual(ref.power(), sharded.power, "power");
    expectBitwiseEqual(ref.estimates(), sharded.estimates,
                       "estimate");
    EXPECT_GT(sharded.suppressed_frames, 0u);
}

TEST(ShardSparseTest, SparseTcpAndFourShardsStayBitwise)
{
    // The sparse transport round must not depend on the datagram
    // framing or the shard count: TCP streams and a 4-way split
    // pin the same single-process active-set trajectory.
    const std::size_t n = 96, rounds = 150;
    const auto prob = test::npbProblem(n, 170.0, 7);
    Rng topo_rng(3);
    const auto topo = makeChordalRing(n, 6, topo_rng);
    DibaAllocator::Config cfg;
    cfg.active_threshold = 0.25 * cfg.tolerance;

    DibaAllocator ref(topo, cfg);
    ref.reset(prob);
    for (std::size_t r = 0; r < rounds; ++r)
        ref.iterate();

    for (const auto proto : {net::SocketTransport::Proto::Tcp,
                             net::SocketTransport::Proto::Udp}) {
        ShardRunOptions opt;
        opt.num_shards =
            proto == net::SocketTransport::Proto::Tcp ? 2u : 4u;
        opt.rounds = rounds;
        opt.proto = proto;
        const auto sharded = runShardedDiba(prob, topo, cfg, opt);
        ASSERT_TRUE(sharded.ok) << sharded.error;
        expectBitwiseEqual(ref.power(), sharded.power, "power");
        expectBitwiseEqual(ref.estimates(), sharded.estimates,
                           "estimate");
    }
}

TEST(ShardProcessTest, LossyShardsMatchLossyLoopbackBitwise)
{
    // Fault-model parity: every shard decorates its socket
    // transport with a SAME-SEED LossyTransport, so the replicas
    // agree on every fate with zero coordination -- and the whole
    // sharded run stays bitwise equal to the single-process lossy
    // loopback with that seed.
    const std::size_t n = 48, rounds = 30;
    const auto prob = test::npbProblem(n, 170.0, 11);
    Rng topo_rng(4);
    const auto topo = makeChordalRing(n, 6, topo_rng);
    const DibaAllocator::Config cfg{};

    LossyChannel::Config loss;
    loss.drop_rate = 0.15;
    loss.delay_rate = 0.1;
    loss.max_lag = 2;

    ShardRunOptions opt;
    opt.num_shards = 2;
    opt.rounds = rounds;
    opt.lossy = true;
    opt.loss = loss;
    opt.loss_seed = 99;
    const auto sharded = runShardedDiba(prob, topo, cfg, opt);

    DibaAllocator ref(topo, cfg);
    ref.reset(prob);
    net::LoopbackTransport loopback;
    fault::LossyTransport lossy(loopback, loss, 99);
    for (std::size_t r = 0; r < rounds; ++r)
        ref.stepWithTransport(lossy);

    expectBitwiseEqual(ref.power(), sharded.power, "power");
    expectBitwiseEqual(ref.estimates(), sharded.estimates,
                       "estimate");
}

} // namespace
} // namespace dpc
