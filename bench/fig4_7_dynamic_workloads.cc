/**
 * @file
 * Fig. 4.7 reproduction: a N=1000 cluster at a fixed 180 kW budget
 * with continuous workload churn (finished jobs replaced by fresh
 * draws from Table 4.1).  DiBA retracks the moving optimum; the
 * total power stays strictly under the limit throughout.
 */

#include "bench/common.hh"
#include "cluster/sim.hh"

using namespace dpc;

int
main()
{
    bench::banner("Figure 4.7",
                  "N=1000, P=180 kW, 80 minutes of workload churn "
                  "(mean job 120 s); one row per simulated minute");

    const std::size_t n = 1000;
    const double budget = 180.0 * static_cast<double>(n);
    Rng rng(37);
    auto assignment = drawNpbAssignment(n, rng);
    ClusterSimConfig cfg;
    cfg.mean_job_s = 120.0;
    cfg.diba_rounds_per_step = 30;
    ClusterSim sim(std::move(assignment), makeRing(n), budget,
                   DibaAllocator::Config(), cfg);

    // Stream samples and summarise per minute.
    const auto samples = sim.run(80.0 * 60.0);
    Table table({"minute", "total_kW", "snp", "snp_opt",
                 "frac_of_opt"});
    double worst_frac = 1.0;
    bool violated = false;
    for (std::size_t minute = 1; minute <= 80; minute += 4) {
        const auto &s = samples[minute * 60 - 1];
        violated |= s.allocated_power >= budget;
        // Oracle for the mix in force at this minute is not
        // directly recoverable from samples; recompute it at the
        // end only (below).  Report the SNP trajectory here.
        table.addRow({Table::num((long long)minute),
                      Table::num(s.allocated_power / 1000.0, 2),
                      Table::num(s.snp, 4), "-", "-"});
    }
    table.print(std::cout);

    // Final-mix optimality check.
    AllocationProblem prob;
    prob.utilities = sim.diba().utilities();
    prob.budget = budget;
    const auto oracle = solveKkt(prob);
    const double u =
        totalUtility(prob.utilities, sim.diba().power());
    worst_frac = u / oracle.utility;

    std::cout << "\nFinal-mix utility fraction of optimal: "
              << Table::num(worst_frac, 4)
              << " (paper: 'close to optimal').\nBudget "
                 "violations during churn: "
              << (violated ? "YES (bug!)" : "none")
              << " (paper: 'strictly below the power limit').\n";
    return 0;
}
