/**
 * @file
 * Extension study: where does a two-level hierarchy land between
 * the four points of the design space — uniform, hierarchical
 * (facility -> rack -> server), DiBA, and the exact optimum — in
 * SNP and in coordinator span (the fan-in any single controller
 * must handle, the paper's scalability bottleneck)?
 */

#include "alloc/hierarchical.hh"
#include "bench/common.hh"

using namespace dpc;

int
main()
{
    bench::banner("Hierarchical middle ground (extension)",
                  "N=1000, racks of 40: SNP and coordinator span "
                  "per scheme across budgets");

    const std::size_t n = 1000;
    Table table({"budget_W/node", "uniform", "hierarchical",
                 "diba", "optimal"});
    for (double wpn : {166.0, 174.0, 182.0}) {
        const auto prob = bench::npbProblem(n, wpn, 57);
        UniformAllocator uniform;
        HierarchicalAllocator hier;
        DibaAllocator diba(makeRing(n));
        const auto r_u = uniform.allocate(prob);
        const auto r_h = hier.allocate(prob);
        const auto r_d = diba.allocate(prob);
        const auto r_o = solveKkt(prob);
        table.addRow({Table::num(wpn, 0),
                      Table::num(bench::snpOf(prob, r_u.power), 4),
                      Table::num(bench::snpOf(prob, r_h.power), 4),
                      Table::num(bench::snpOf(prob, r_d.power), 4),
                      Table::num(bench::snpOf(prob, r_o.power),
                                 4)});
    }
    table.print(std::cout);

    std::cout
        << "\nCoordinator span (largest fan-in one controller "
           "handles): centralized = " << n
        << " servers; hierarchical = max(" << n / 40
        << " racks, 40 servers); DiBA = 2 neighbours.\n"
        << "The hierarchy closes most of uniform's gap to the "
           "optimum but still has per-level coordinators (single "
           "points of failure and reconfiguration cost when racks "
           "are added), which is exactly the scaling argument for "
           "the fully decentralized scheme (Sec. 4.2).\n";
    return 0;
}
