/**
 * @file
 * Table 4.2 reproduction: computation vs. communication time of
 * the centralized solver, the primal-dual scheme and DiBA as the
 * cluster grows from 400 to 6400 nodes.
 *
 * Computation is measured wall-clock on this machine (per-node
 * wall time for the parallel schemes); communication comes from
 * the queueing model of Sec. 4.4.2 with the paper's measured
 * 200 us read / 10 us write socket latencies, multiplied by the
 * number of iterations each scheme needs to hit 99% of the
 * optimal utility (Eq. 4.11).  Absolute numbers differ from the
 * paper's testbed; the shape to check is: centralized comp and
 * PD comm grow with N, DiBA stays flat.
 */

#include <chrono>
#include <cstdlib>

#include "alloc/centralized.hh"
#include "bench/common.hh"
#include "net/comm_model.hh"
#include "tools/bench_json.hh"
#include "util/thread_pool.hh"

using namespace dpc;

namespace {

double
ms(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double, std::milli>(d).count();
}

DibaAllocator::Config
engineConfig(bool soa, std::size_t threads,
             double active_threshold = -1.0)
{
    DibaAllocator::Config cfg;
    cfg.enable_quad_fastpath = soa;
    cfg.num_threads = threads;
    cfg.active_threshold = active_threshold;
    return cfg;
}

} // namespace

int
main()
{
    bench::banner("Table 4.2",
                  "Runtime breakdown (ms) vs. cluster size; comm "
                  "from the 200us/10us queueing model");

    CommModel net;
    Rng net_rng(5);
    Table table({"nodes", "cent_comp", "cent_comm", "pd_comp",
                 "pd_comm", "pd_iters", "diba_comp", "diba_comm",
                 "diba_iters"});

    for (std::size_t n : {400u, 800u, 1600u, 3200u, 6400u}) {
        const auto prob = bench::npbProblem(n, 172.0, 23);
        const auto oracle = solveKkt(prob);

        // Centralized: one full solve, one gather/scatter round.
        CentralizedAllocator central;
        auto t0 = std::chrono::steady_clock::now();
        central.allocate(prob);
        const double cent_comp =
            ms(std::chrono::steady_clock::now() - t0);
        const double cent_comm =
            net.coordinatorRoundUs(n, net_rng) / 1000.0;

        // Primal-dual: nodes compute best responses in parallel;
        // each iteration costs one coordinator round.
        const std::size_t pd_iters =
            bench::pdIterationsToFraction(prob, oracle.utility,
                                          0.99);
        PrimalDualAllocator pd;
        t0 = std::chrono::steady_clock::now();
        pd.allocate(prob);
        const double pd_wall =
            ms(std::chrono::steady_clock::now() - t0);
        const double pd_comp =
            pd_wall / static_cast<double>(n); // per-node, parallel
        double pd_comm = 0.0;
        for (std::size_t i = 0; i < pd_iters; ++i)
            pd_comm += net.coordinatorRoundUs(n, net_rng) / 1000.0;

        // DiBA: per-node compute in parallel, neighbour-only comm.
        DibaAllocator diba(makeRing(n));
        t0 = std::chrono::steady_clock::now();
        const std::size_t diba_iters =
            bench::dibaIterationsToFraction(diba, prob,
                                            oracle.utility, 0.99);
        const double diba_wall =
            ms(std::chrono::steady_clock::now() - t0);
        const double diba_comp =
            diba_wall / static_cast<double>(n);
        const double diba_comm =
            static_cast<double>(diba_iters) *
            net.dibaRoundUs(diba.topology()) / 1000.0;

        table.addRow({Table::num(static_cast<long long>(n)),
                      Table::num(cent_comp, 2),
                      Table::num(cent_comm, 2),
                      Table::num(pd_comp, 3),
                      Table::num(pd_comm, 2),
                      Table::num(static_cast<long long>(pd_iters)),
                      Table::num(diba_comp, 3),
                      Table::num(diba_comm, 2),
                      Table::num(
                          static_cast<long long>(diba_iters))});
    }
    table.print(std::cout);
    std::cout
        << "\nPaper shape: centralized comp and comm grow ~linearly "
           "with N; PD comm dominates (serial coordinator each "
           "iteration); DiBA comm stays flat (~28 ms) regardless "
           "of N, giving a >100x total-runtime win at 6400 nodes.\n";

    // Part 2: round-engine scaling.  Past 6400 nodes the oracle
    // solves above become the bottleneck, so this section measures
    // only what the paper claims stays flat -- DiBA per-round
    // compute per node -- under the three engine configurations
    // (seed-style generic serial, quadratic SoA serial, SoA +
    // static-chunked thread pool).  Every run also lands in
    // BENCH_diba_rounds.json for the perf trajectory.
    bench::banner("Table 4.2 (round engine)",
                  "DiBA per-round compute vs. cluster size; "
                  "engines: seed (virtual+serial), soa "
                  "(devirtualized), par (soa + thread pool)");

    const std::size_t hw = ThreadPool::hardwareChunks();
    const double thr = 0.25 * DibaAllocator::Config().tolerance;
    tools::BenchJsonWriter json;
    Table scaling({"nodes", "rounds", "seed_ms", "soa_ms",
                   "par_ms", "active_ms", "seed_node_ns",
                   "par_node_ns", "speedup"});
    for (std::size_t n : {6400u, 25600u, 102400u}) {
        const auto prob = bench::npbProblem(n, 172.0, 23);
        const std::size_t rounds =
            std::max<std::size_t>(20, 4000000 / n);

        struct EngineRun
        {
            const char *name;
            DibaAllocator::Config cfg;
            double per_round_ms = 0.0;
        } runs[] = {
            {"seed", engineConfig(false, 0), 0.0},
            {"soa", engineConfig(true, 0), 0.0},
            {"par", engineConfig(true, hw), 0.0},
            // Active-set engine, measured over a converging run:
            // the first rounds sweep everyone, then the frontier
            // narrows with the residuals, so the mean reflects the
            // cost of an actual solve rather than the worst round.
            {"active", engineConfig(true, 0, thr), 0.0},
        };
        for (auto &run : runs) {
            DibaAllocator diba(makeRing(n), run.cfg);
            diba.reset(prob);
            bench::timeRounds(n, 5, [&] {
                diba.iterate(); // warm caches / page in state
            });
            const auto t = bench::timeRounds(
                n, rounds, [&] { diba.iterate(); });
            run.per_round_ms = t.ms_per_round;
            auto &rec =
                json.record()
                    .field("bench", "diba_round")
                    .field("engine", run.name)
                    .field("nodes", n)
                    .field("threads",
                           run.cfg.num_threads == 0
                               ? static_cast<std::size_t>(1)
                               : run.cfg.num_threads);
            bench::addTimingFields(rec, t).field(
                "label", bench::problemLabel(n, 172.0, 23));
        }
        scaling.addRow(
            {Table::num(static_cast<long long>(n)),
             Table::num(static_cast<long long>(rounds)),
             Table::num(runs[0].per_round_ms, 3),
             Table::num(runs[1].per_round_ms, 3),
             Table::num(runs[2].per_round_ms, 3),
             Table::num(runs[3].per_round_ms, 3),
             Table::num(1e6 * runs[0].per_round_ms /
                            static_cast<double>(n),
                        1),
             Table::num(1e6 * runs[2].per_round_ms /
                            static_cast<double>(n),
                        1),
             Table::num(runs[0].per_round_ms /
                            runs[2].per_round_ms,
                        2)});
    }
    scaling.print(std::cout);
    std::cout << "\nShape to check: per-node ns stays ~flat as N "
                 "grows 16x (the decentralized round is O(deg) "
                 "per node), and the SoA/parallel engines beat "
                 "the seed path by a widening margin.\n";

    // Part 3: warm-started control steps.  The control loop's
    // common case is a small budget move on an already-converged
    // cluster; warmStart() keeps the converged estimate spread and
    // annealed barriers, so reconvergence takes a fraction of the
    // cold solve the legacy path (reset + full solve) pays.
    bench::banner("Table 4.2 (warm start)",
                  "Rounds to reconverge after a +/-20% budget "
                  "step: cold reset vs. warmStart()");
    Table warm({"nodes", "delta_pct", "cold_rounds", "warm_rounds",
                "warm_frac"});
    for (std::size_t n : {1600u, 6400u}) {
        const auto prob = bench::npbProblem(n, 172.0, 23);
        for (const double frac : {-0.20, 0.20}) {
            const double delta = frac * prob.budget;
            Rng rng(3);

            DibaAllocator cold(makeRing(n), engineConfig(true, 0));
            auto shifted = prob;
            shifted.budget += delta;
            cold.reset(shifted);
            std::size_t cold_rounds = 0;
            while (!cold.converged() && cold_rounds < 200000) {
                cold.step(rng);
                ++cold_rounds;
            }

            DibaAllocator warm_alloc(makeRing(n),
                                     engineConfig(true, 0));
            warm_alloc.allocate(prob); // settle at the old budget
            warm_alloc.warmStart(warm_alloc.result(), delta);
            std::size_t warm_rounds = 0;
            while (!warm_alloc.converged() &&
                   warm_rounds < 200000) {
                warm_alloc.step(rng);
                ++warm_rounds;
            }

            const double ratio =
                static_cast<double>(warm_rounds) /
                static_cast<double>(std::max<std::size_t>(
                    cold_rounds, 1));
            warm.addRow(
                {Table::num(static_cast<long long>(n)),
                 Table::num(100.0 * frac, 0),
                 Table::num(static_cast<long long>(cold_rounds)),
                 Table::num(static_cast<long long>(warm_rounds)),
                 Table::num(ratio, 3)});
            json.record()
                .field("bench", "warm_start")
                .field("nodes", n)
                .field("budget_delta_frac", frac)
                .field("cold_rounds", cold_rounds)
                .field("warm_rounds", warm_rounds)
                .field("warm_frac", ratio)
                .field("label", bench::problemLabel(n, 172.0, 23));
        }
    }
    warm.print(std::cout);
    std::cout << "\nShape to check: warm_frac well under 0.25 -- "
                 "a budget step should reconverge in a small "
                 "fraction of a cold solve.\n";

    const char *json_path = std::getenv("DPC_BENCH_JSON");
    json.save(json_path != nullptr ? json_path
                                   : "BENCH_diba_rounds.json");
    return 0;
}
