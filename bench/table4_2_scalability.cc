/**
 * @file
 * Table 4.2 reproduction: computation vs. communication time of
 * the centralized solver, the primal-dual scheme and DiBA as the
 * cluster grows from 400 to 6400 nodes.
 *
 * Computation is measured wall-clock on this machine (per-node
 * wall time for the parallel schemes); communication comes from
 * the queueing model of Sec. 4.4.2 with the paper's measured
 * 200 us read / 10 us write socket latencies, multiplied by the
 * number of iterations each scheme needs to hit 99% of the
 * optimal utility (Eq. 4.11).  Absolute numbers differ from the
 * paper's testbed; the shape to check is: centralized comp and
 * PD comm grow with N, DiBA stays flat.
 */

#include <chrono>

#include "alloc/centralized.hh"
#include "bench/common.hh"
#include "net/comm_model.hh"

using namespace dpc;

namespace {

double
ms(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double, std::milli>(d).count();
}

} // namespace

int
main()
{
    bench::banner("Table 4.2",
                  "Runtime breakdown (ms) vs. cluster size; comm "
                  "from the 200us/10us queueing model");

    CommModel net;
    Rng net_rng(5);
    Table table({"nodes", "cent_comp", "cent_comm", "pd_comp",
                 "pd_comm", "pd_iters", "diba_comp", "diba_comm",
                 "diba_iters"});

    for (std::size_t n : {400u, 800u, 1600u, 3200u, 6400u}) {
        const auto prob = bench::npbProblem(n, 172.0, 23);
        const auto oracle = solveKkt(prob);

        // Centralized: one full solve, one gather/scatter round.
        CentralizedAllocator central;
        auto t0 = std::chrono::steady_clock::now();
        central.allocate(prob);
        const double cent_comp =
            ms(std::chrono::steady_clock::now() - t0);
        const double cent_comm =
            net.coordinatorRoundUs(n, net_rng) / 1000.0;

        // Primal-dual: nodes compute best responses in parallel;
        // each iteration costs one coordinator round.
        const std::size_t pd_iters =
            bench::pdIterationsToFraction(prob, oracle.utility,
                                          0.99);
        PrimalDualAllocator pd;
        t0 = std::chrono::steady_clock::now();
        pd.allocate(prob);
        const double pd_wall =
            ms(std::chrono::steady_clock::now() - t0);
        const double pd_comp =
            pd_wall / static_cast<double>(n); // per-node, parallel
        double pd_comm = 0.0;
        for (std::size_t i = 0; i < pd_iters; ++i)
            pd_comm += net.coordinatorRoundUs(n, net_rng) / 1000.0;

        // DiBA: per-node compute in parallel, neighbour-only comm.
        DibaAllocator diba(makeRing(n));
        t0 = std::chrono::steady_clock::now();
        const std::size_t diba_iters =
            bench::dibaIterationsToFraction(diba, prob,
                                            oracle.utility, 0.99);
        const double diba_wall =
            ms(std::chrono::steady_clock::now() - t0);
        const double diba_comp =
            diba_wall / static_cast<double>(n);
        const double diba_comm =
            static_cast<double>(diba_iters) *
            net.dibaRoundUs(diba.topology()) / 1000.0;

        table.addRow({Table::num(static_cast<long long>(n)),
                      Table::num(cent_comp, 2),
                      Table::num(cent_comm, 2),
                      Table::num(pd_comp, 3),
                      Table::num(pd_comm, 2),
                      Table::num(static_cast<long long>(pd_iters)),
                      Table::num(diba_comp, 3),
                      Table::num(diba_comm, 2),
                      Table::num(
                          static_cast<long long>(diba_iters))});
    }
    table.print(std::cout);
    std::cout
        << "\nPaper shape: centralized comp and comm grow ~linearly "
           "with N; PD comm dominates (serial coordinator each "
           "iteration); DiBA comm stays flat (~28 ms) regardless "
           "of N, giving a >100x total-runtime win at 6400 nodes.\n";
    return 0;
}
