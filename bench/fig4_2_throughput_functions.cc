/**
 * @file
 * Fig. 4.2 reproduction: normalized throughput functions of four
 * representative workloads over the server power range, showing
 * the concave per-benchmark shapes (compute-bound EP climbs almost
 * linearly; memory-bound CG saturates early).
 */

#include "bench/common.hh"
#include "workload/benchmarks.hh"

using namespace dpc;

int
main()
{
    bench::banner("Figure 4.2",
                  "Normalized throughput r_i(p)/r_i^max of four "
                  "workloads vs. power (W)");

    const std::vector<std::string> picks{"EP", "HPL", "MG", "CG"};
    std::vector<std::string> headers{"power_w"};
    for (const auto &name : picks)
        headers.push_back(name);
    Table table(headers);

    std::vector<QuadraticUtility> curves;
    for (const auto &name : picks)
        curves.push_back(findBenchmark(name).utility());

    for (double p = 120.0; p <= 220.0 + 1e-9; p += 10.0) {
        std::vector<std::string> row{Table::num(p, 0)};
        for (const auto &u : curves)
            row.push_back(Table::num(u.value(p) / u.peakValue(), 4));
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nShape check: at 120 W the compute-bound EP "
                 "retains the smallest fraction of its peak while "
                 "CG retains the largest.\n";
    return 0;
}
