/**
 * @file
 * Fig. 4.4 reproduction: dynamic total-budget reallocation.  The
 * budget steps to a new level every simulated minute (a
 * demand-response program); DiBA retracks each level with no
 * budget violation at any sample.
 */

#include "bench/common.hh"
#include "cluster/sim.hh"

using namespace dpc;

int
main()
{
    bench::banner("Figure 4.4",
                  "N=1000 cluster, budget re-set every 60 s; total "
                  "power and SNP over five minutes");

    const std::size_t n = 1000;
    Rng rng(29);
    auto assignment = drawNpbAssignment(n, rng);
    ClusterSimConfig cfg;
    cfg.diba_rounds_per_step = 80;
    const std::vector<double> levels{180.0, 170.0, 186.0, 166.0,
                                     176.0};
    ClusterSim sim(
        std::move(assignment), makeRing(n),
        static_cast<double>(n) * 180.0, DibaAllocator::Config(),
        ClusterSim::Options{
            .sim = cfg,
            .budget_schedule =
                [&](double t) {
                    const auto k = std::min<std::size_t>(
                        static_cast<std::size_t>(t / 60.0),
                        levels.size() - 1);
                    return static_cast<double>(n) * levels[k];
                },
        });

    const auto samples = sim.run(300.0);
    Table table({"t_s", "budget_kW", "alloc_kW", "consumed_kW",
                 "snp", "violation"});
    bool violated = false;
    for (std::size_t i = 0; i < samples.size(); i += 10) {
        const auto &s = samples[i];
        const bool v = s.allocated_power >= s.budget;
        violated |= v;
        table.addRow({Table::num(s.t, 0),
                      Table::num(s.budget / 1000.0, 1),
                      Table::num(s.allocated_power / 1000.0, 2),
                      Table::num(s.consumed_power / 1000.0, 2),
                      Table::num(s.snp, 4), v ? "YES" : "no"});
    }
    table.print(std::cout);
    std::cout << "\nPaper shape: near-optimal SNP at every plateau "
                 "with zero budget violations.  Violations seen: "
              << (violated ? "YES (bug!)" : "none") << "\n";
    return 0;
}
