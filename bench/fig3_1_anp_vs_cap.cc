/**
 * @file
 * Fig. 3.1 reproduction: ANP vs. power cap for four servers
 * running different heterogeneous SPEC-style workload sets on the
 * Ch.3 reference server (caps 130..165 W).  The shapes to match:
 * strongly workload-dependent gains, gradient changing with the
 * operating cap, and curves that cross over (the case that breaks
 * greedy throughput/Watt budgeting).
 */

#include <iostream>

#include "model/utility.hh"
#include "util/table.hh"

using namespace dpc;

int
main()
{
    std::cout << "\n=== Figure 3.1 ===\n"
              << "ANP vs. power cap for four workload sets\n\n";

    // Hand-picked shapes reproducing the paper's qualitative mix:
    //  A: modest improvements across the range;
    //  B: fast growth at low caps, saturates early;
    //  C: steady mid-slope growth;
    //  D: slow start, steep gains at high caps (crosses B).
    struct Set
    {
        const char *name;
        QuadraticUtility u;
    };
    const Set sets[] = {
        {"A", QuadraticUtility::fromShape(0.88, 0.5, 130, 165)},
        {"B", QuadraticUtility::fromShape(0.62, 1.0, 130, 165)},
        {"C", QuadraticUtility::fromShape(0.55, 0.35, 130, 165)},
        {"D", QuadraticUtility::fromShape(0.45, 0.0, 130, 165)},
    };

    Table table({"cap_W", "A", "B", "C", "D"});
    for (double cap = 130.0; cap <= 165.0 + 1e-9; cap += 5.0) {
        std::vector<std::string> row{Table::num(cap, 0)};
        for (const auto &s : sets)
            row.push_back(
                Table::num(s.u.value(cap) / s.u.peakValue(), 4));
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    const auto &b = sets[1].u;
    const auto &d = sets[3].u;
    std::cout << "\nCrossover check: at 135 W workload B has ANP "
              << Table::num(b.value(135) / b.peakValue(), 3)
              << " > D ("
              << Table::num(d.value(135) / d.peakValue(), 3)
              << "), but D overtakes at high caps -- greedy "
                 "throughput/Watt ranking mis-allocates here.\n";
    return 0;
}
