/**
 * @file
 * Shard-death recovery drill: SIGKILL (and SIGSTOP-past-deadline)
 * real forked shard processes mid-run and measure the epoch-fenced
 * recovery -- detection latency in rounds, rollback depth, recovery
 * wall time, and post-recovery availability -- while PROVING the
 * survivors correct: their trajectory must be bitwise-equal to a
 * single-process allocator that suffers the identical surgery
 * (applyShardRecovery) at the identical round boundary, and that
 * reference is InvariantChecker-audited every post-recovery round,
 * so cap conservation on the survivor partition is machine-checked.
 *
 * Scenarios per size: 2-shard UDP kill, 2-shard TCP kill, 4-shard
 * UDP kill, and a 2-shard SIGSTOP that outlives the liveness
 * deadline (the hung-not-dead path: the broker must SIGKILL it
 * itself before recovery can begin).
 *
 * Emitted to BENCH_wire_recovery.json per row: detection_rounds
 * (quiesce round minus fault round: how far the survivors ran
 * before the obituary landed), recovery_rounds (quiesce minus
 * resume round: the rollback depth the checkpoint ring absorbed),
 * recovery_ms (death confirmed -> Resume broadcast), availability
 * (survivor nodes reporting / survivor nodes total), and
 * worst_residual_w from the reference audit.  The bench exits
 * non-zero on any parity mismatch, availability below 0.999, or a
 * detection/rollback depth the checkpoint ring could not have
 * covered -- the same absolute bars tools/bench_compare.py applies
 * to the committed baseline.
 *
 * DPC_BENCH_SMOKE=1 shrinks to one small size and few rounds --
 * the ci.sh kill-recovery smoke (UDP and TCP).
 */

#include <cstdlib>
#include <cstring>

#include "bench/common.hh"
#include "cluster/shard.hh"
#include "fault/invariant_checker.hh"
#include "fault/shard_fault.hh"
#include "net/transport.hh"
#include "tools/bench_json.hh"

using namespace dpc;

namespace {

constexpr double kWattsPerNode = 172.0;
constexpr std::uint64_t kProblemSeed = 97;
constexpr std::uint64_t kTopoSeed = 7;
constexpr double kAvailabilityBar = 0.999;
constexpr std::uint64_t kDetectionBar = 8;

Graph
topologyOf(std::size_t n)
{
    Rng rng(kTopoSeed);
    return makeChordalRing(n, n / 4, rng);
}

const char *
protoName(net::SocketTransport::Proto proto)
{
    return proto == net::SocketTransport::Proto::Udp ? "udp"
                                                     : "tcp";
}

/** Bitwise mismatches over the SURVIVOR-owned entries. */
std::size_t
survivorMismatches(const cluster::ShardRunResult &res,
                   const std::vector<double> &ref_p,
                   const std::vector<double> &ref_e)
{
    std::size_t bad = 0;
    for (std::size_t i = 0; i < ref_p.size(); ++i) {
        if ((res.dead_mask >> res.plan.owner_of[i]) & 1)
            continue;
        bad +=
            std::memcmp(&res.power[i], &ref_p[i], sizeof(double)) !=
            0;
        bad += std::memcmp(&res.estimates[i], &ref_e[i],
                           sizeof(double)) != 0;
    }
    return bad;
}

} // namespace

int
main()
{
    const bool smoke = std::getenv("DPC_BENCH_SMOKE") != nullptr;
    const std::vector<std::size_t> sizes =
        smoke ? std::vector<std::size_t>{512}
              : std::vector<std::size_t>{1024, 4096};
    const std::size_t rounds = smoke ? 40 : 120;
    const std::uint64_t fault_round = rounds / 2;

    bench::banner(
        "wire_recovery",
        "SIGKILL/SIGSTOP forked shard processes mid-run: "
        "epoch-fenced recovery latency + availability, survivors "
        "bitwise-checked against the single-process surgery "
        "reference");

    struct Scenario
    {
        const char *name;
        std::uint32_t shards;
        std::uint32_t victim;
        net::SocketTransport::Proto proto;
        bool stall; ///< SIGSTOP past the deadline instead of kill
    };
    const std::vector<Scenario> grid{
        {"kill", 2, 1, net::SocketTransport::Proto::Udp, false},
        {"kill", 2, 1, net::SocketTransport::Proto::Tcp, false},
        {"kill", 4, 2, net::SocketTransport::Proto::Udp, false},
        {"hang", 2, 1, net::SocketTransport::Proto::Udp, true},
    };

    tools::BenchJsonWriter writer;
    Table table({"n", "scenario", "proto", "shards", "detect_r",
                 "rollback_r", "recovery_ms", "avail", "resid_w",
                 "parity"});
    std::size_t failures = 0;

    for (const std::size_t n : sizes) {
        const auto prob =
            bench::npbProblem(n, kWattsPerNode, kProblemSeed);
        const auto topo = topologyOf(n);
        const DibaAllocator::Config cfg{};

        for (const Scenario &sc : grid) {
            cluster::ShardRunOptions opt;
            opt.num_shards = sc.shards;
            opt.rounds = rounds;
            opt.proto = sc.proto;
            opt.recover = true;
            opt.deadline_ms = 600;
            if (sc.stall)
                opt.faults.stallAt(sc.victim, fault_round, 600000);
            else
                opt.faults.killAt(sc.victim, fault_round);

            const auto res =
                cluster::runShardedDiba(prob, topo, cfg, opt);
            if (!res.ok) {
                std::cerr << "wire_recovery: " << sc.name << " n="
                          << n << ": run failed: " << res.error
                          << "\n";
                ++failures;
                continue;
            }

            // Reference: single-process to the resume round, the
            // identical surgery, then the remaining rounds -- with
            // the safety invariants audited after every
            // post-recovery round (check() panics on violation).
            DibaAllocator ref(topo, cfg);
            ref.reset(prob);
            net::LoopbackTransport loopback;
            for (std::uint64_t r = 0; r < res.recovery_round; ++r)
                ref.stepWithTransport(loopback);
            cluster::applyShardRecovery(ref, res.plan,
                                        res.dead_mask, res.epoch);
            InvariantChecker checker;
            checker.check(ref);
            for (std::size_t r = res.recovery_round; r < rounds;
                 ++r) {
                ref.stepWithTransport(loopback);
                checker.check(ref);
            }

            const std::size_t bad = survivorMismatches(
                res, ref.power(), ref.estimates());
            // Saturating: a survivor can quiesce before it even
            // reaches the victim's fault round (detection landed
            // faster than the round clock ticks).
            const std::uint64_t detect_r =
                res.quiesce_round > fault_round
                    ? res.quiesce_round - fault_round
                    : 0;
            const std::uint64_t rollback_r =
                res.quiesce_round - res.recovery_round;
            const double recovery_ms = res.recovery_s * 1000.0;

            if (bad != 0 || res.availability < kAvailabilityBar ||
                detect_r > kDetectionBar ||
                rollback_r > opt.checkpoint_depth)
                ++failures;

            table.addRow(
                {Table::num(n, 0), sc.name, protoName(sc.proto),
                 Table::num(sc.shards, 0), Table::num(detect_r, 0),
                 Table::num(rollback_r, 0),
                 Table::num(recovery_ms, 1),
                 Table::num(res.availability, 4),
                 Table::num(checker.worstResidual(), 3),
                 bad == 0 ? "OK" : "FAIL"});
            writer.record()
                .field("bench", "wire_recovery")
                .field("scenario", sc.name)
                .field("proto", protoName(sc.proto))
                .field("n", static_cast<long long>(n))
                .field("shards",
                       static_cast<long long>(sc.shards))
                .field("rounds", static_cast<long long>(rounds))
                .field("fault_round",
                       static_cast<long long>(fault_round))
                .field("detection_rounds",
                       static_cast<long long>(detect_r))
                .field("recovery_rounds",
                       static_cast<long long>(rollback_r))
                .field("recovery_ms", recovery_ms)
                .field("availability", res.availability)
                .field("worst_residual_w",
                       checker.worstResidual())
                .field("stale_epoch_frames",
                       static_cast<long long>(
                           res.stale_epoch_frames))
                .field("gaveup_frames", static_cast<long long>(
                                            res.gaveup_frames));
        }
    }

    table.print(std::cout);
    writer.save("BENCH_wire_recovery.json");

    if (failures != 0) {
        std::cerr << "wire_recovery: " << failures
                  << " scenario(s) failed the recovery bars "
                     "(parity / availability / detection depth)\n";
        return 1;
    }
    std::cout << "\nwire_recovery: every recovery was "
                 "bitwise-correct, invariant-clean, and within "
                 "the detection bars\n";
    return 0;
}
