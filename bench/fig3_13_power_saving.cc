/**
 * @file
 * Fig. 3.13 reproduction: computing power needed to reach a target
 * SNP, reported as the saving over the uniform baseline for
 * previous-greedy, predictor+knapsack and oracle+knapsack.  The
 * minimum budget per method is found by bisection on the budget.
 */

#include <functional>
#include <iostream>

#include "alloc/knapsack.hh"
#include "metrics/performance.hh"
#include "model/predictors.hh"
#include "util/table.hh"
#include "workload/generator.hh"

using namespace dpc;

namespace {

using CapsAt = std::function<std::vector<double>(double)>;

/** Smallest budget whose allocation reaches the target SNP. */
double
minBudgetFor(double target_snp, double lo, double hi,
             const std::vector<UtilityPtr> &us, const CapsAt &caps)
{
    auto snp_at = [&](double b) {
        return snpGeometric(anpVector(us, caps(b)));
    };
    if (snp_at(hi) < target_snp)
        return hi;
    for (int it = 0; it < 30; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (snp_at(mid) >= target_snp)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace

int
main()
{
    std::cout << "\n=== Figure 3.13 ===\n"
              << "Computing-power saving over uniform at equal "
                 "SNP, N=800 servers\n\n";

    const std::size_t n = 800;
    Rng rng(71);
    const auto cluster = drawSpecMixAssignment(
        n, MixKind::HomogeneousWithinServer, rng);
    const auto us = utilitiesOf(cluster);

    CapGrid grid;
    KnapsackBudgeter budgeter(grid);
    auto predictor = makeQuadraticLlcTpPredictor();
    Rng train_rng(72);
    predictor->train(makeCharacterizationSet(300, train_rng));

    std::vector<std::vector<double>> oracle_vals(n), pred_vals(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double peak = us[i]->peakValue();
        ServerObservation obs{145.0, us[i]->value(145.0),
                              cluster[i].llc};
        const auto curve = predictor->predict(obs);
        for (std::size_t j = 0; j < grid.levels; ++j) {
            const double cap = grid.capAt(j);
            oracle_vals[i].push_back(us[i]->value(cap) / peak);
            pred_vals[i].push_back(
                std::max(curve(cap) / peak, 1e-6));
        }
    }

    const CapsAt uniform_caps = [&](double b) {
        const double wpn = b / static_cast<double>(n);
        double cap = grid.capAt(0);
        for (std::size_t j = 0; j < grid.levels; ++j)
            if (grid.capAt(j) <= wpn)
                cap = grid.capAt(j);
        return std::vector<double>(n, cap);
    };
    const CapsAt pred_caps = [&](double b) {
        return budgeter.allocate(pred_vals, b).power;
    };
    const CapsAt oracle_caps = [&](double b) {
        return budgeter.allocate(oracle_vals, b).power;
    };
    const CapsAt greedy_caps = [&](double b) {
        std::vector<double> caps(n, grid.capAt(0));
        double remaining = b - grid.p0 * static_cast<double>(n);
        bool progress = true;
        while (remaining >= grid.increment && progress) {
            progress = false;
            double best_key = -1.0;
            std::size_t best_i = n;
            for (std::size_t i = 0; i < n; ++i) {
                if (caps[i] + grid.increment >
                    grid.maxCap() + 1e-9)
                    continue;
                const double key = us[i]->value(caps[i]) / caps[i];
                if (key > best_key) {
                    best_key = key;
                    best_i = i;
                }
            }
            if (best_i < n) {
                caps[best_i] += grid.increment;
                remaining -= grid.increment;
                progress = true;
            }
        }
        return caps;
    };

    const double lo = grid.p0 * static_cast<double>(n);
    const double hi = grid.maxCap() * static_cast<double>(n);

    Table table({"target_SNP", "greedy_saving_%",
                 "predictor+knapsack_saving_%",
                 "oracle+knapsack_saving_%"});
    for (double target : {0.90, 0.92, 0.94, 0.96, 0.98}) {
        const double b_uni =
            minBudgetFor(target, lo, hi, us, uniform_caps);
        auto saving = [&](const CapsAt &caps) {
            const double b =
                minBudgetFor(target, lo, hi, us, caps);
            return 100.0 * (b_uni - b) / b_uni;
        };
        table.addRow({Table::num(target, 2),
                      Table::num(saving(greedy_caps), 2),
                      Table::num(saving(pred_caps), 2),
                      Table::num(saving(oracle_caps), 2)});
    }
    table.print(std::cout);
    std::cout << "\nPaper shape: the proposed method saves ~1.3-"
                 "2.5% computing power over uniform at equal SNP "
                 "and always beats greedy (which can even cost "
                 "more than uniform at low/mid targets).\n";
    return 0;
}
