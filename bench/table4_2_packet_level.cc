/**
 * @file
 * Table 4.2 communication columns re-derived from the packet-level
 * discrete-event fabric simulation (store-and-forward NICs,
 * ToR/core switches, serialized protocol-stack reads), validating
 * the coarse queueing model used by the main Table 4.2 bench: the
 * coordinator round grows linearly with N while the DiBA round is
 * flat, so at scale the coordinator-based schemes pay orders of
 * magnitude more per iteration.
 */

#include "bench/common.hh"
#include "net/packet_sim.hh"

using namespace dpc;

int
main()
{
    bench::banner("Table 4.2 (packet-level cross-check)",
                  "Per-iteration communication time (ms) from the "
                  "DES fabric vs. the analytic queueing model");

    PacketLevelSim des;
    CommModel analytic;
    Rng rng(91);

    Table table({"nodes", "coord_des_ms", "coord_model_ms",
                 "diba_des_ms", "diba_model_ms", "ratio_at_scale"});
    for (std::size_t n : {400u, 800u, 1600u, 3200u, 6400u}) {
        const double c_des =
            des.coordinatorRoundUs(n, rng) / 1000.0;
        const double c_model =
            analytic.coordinatorRoundUs(n, rng) / 1000.0;
        const auto ring = makeRing(n);
        const double d_des = des.dibaRoundUs(ring, rng) / 1000.0;
        const double d_model =
            analytic.dibaRoundUs(ring) / 1000.0;
        table.addRow({Table::num((long long)n),
                      Table::num(c_des, 2), Table::num(c_model, 2),
                      Table::num(d_des, 3), Table::num(d_model, 3),
                      Table::num(c_des / d_des, 0)});
    }
    table.print(std::cout);
    std::cout
        << "\nShape: both models agree that the coordinator round "
           "is ~N x (read+write) while a ring DiBA round costs a "
           "couple of reads regardless of N.\n";
    return 0;
}
