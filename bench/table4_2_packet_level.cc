/**
 * @file
 * Table 4.2 communication columns re-derived from the packet-level
 * discrete-event fabric simulation (store-and-forward NICs,
 * ToR/core switches, serialized protocol-stack reads), validating
 * the coarse queueing model used by the main Table 4.2 bench: the
 * coordinator round grows linearly with N while the DiBA round is
 * flat, so at scale the coordinator-based schemes pay orders of
 * magnitude more per iteration.
 *
 * Second half: the multi-lane batch engine
 * (net/packet_sim_batch.hh).  An R=8 grid of round configurations
 * (drop rate x overlay degree) runs once lane-by-lane through the
 * standalone simulator and once as a single batched calendar-queue
 * sweep; every lane's makespan must match the standalone value
 * BITWISE (the engines share packet generation, launch-jitter
 * hashing and the (time, packet, stage) event order), and the
 * sweep is timed against the lane-by-lane loop.  Emits
 * BENCH_packet_lanes.json; exits non-zero on any bitwise mismatch
 * or if the aggregate speedup falls under 2x (smoke mode skips the
 * speedup bar, not the bitwise bar).
 */

#include <cstdlib>

#include "bench/common.hh"
#include "net/packet_sim.hh"
#include "net/packet_sim_batch.hh"
#include "tools/bench_json.hh"

using namespace dpc;

namespace {

/** The R=8 lane grid: 4 drop rates x 2 overlay degrees. */
std::vector<PacketLane>
laneGrid(std::size_t n)
{
    const double drops[] = {0.0, 0.05, 0.1, 0.2};
    std::vector<PacketLane> lanes;
    for (const bool chordal : {false, true}) {
        Rng topo(17);
        const Graph g = chordal ? makeChordalRing(n, n / 8, topo)
                                : makeRing(n);
        for (const double drop : drops) {
            PacketLane l;
            l.overlay = g;
            l.drop_rate = drop;
            l.loss_seed =
                0xfab1 + lanes.size(); // distinct per lane
            lanes.push_back(std::move(l));
        }
    }
    return lanes;
}

/** All lanes through the standalone simulator, one at a time. */
std::vector<double>
standaloneLanes(const std::vector<PacketLane> &lanes)
{
    std::vector<double> out;
    out.reserve(lanes.size());
    for (const PacketLane &l : lanes) {
        PacketLevelSim sim(l.params);
        Rng rng(l.loss_seed);
        out.push_back(sim.dibaRoundLossyUs(l.overlay, l.drop_rate,
                                           rng, l.max_retx));
    }
    return out;
}

} // namespace

int
main()
{
    const bool smoke = std::getenv("DPC_BENCH_SMOKE") != nullptr;
    bench::banner("Table 4.2 (packet-level cross-check)",
                  "Per-iteration communication time (ms) from the "
                  "DES fabric vs. the analytic queueing model");

    PacketLevelSim des;
    CommModel analytic;
    Rng rng(91);

    Table table({"nodes", "coord_des_ms", "coord_model_ms",
                 "diba_des_ms", "diba_model_ms", "ratio_at_scale"});
    const std::vector<std::size_t> sizes =
        smoke ? std::vector<std::size_t>{400}
              : std::vector<std::size_t>{400, 800, 1600, 3200,
                                         6400};
    for (std::size_t n : sizes) {
        const double c_des =
            des.coordinatorRoundUs(n, rng) / 1000.0;
        const double c_model =
            analytic.coordinatorRoundUs(n, rng) / 1000.0;
        const auto ring = makeRing(n);
        const double d_des = des.dibaRoundUs(ring, rng) / 1000.0;
        const double d_model =
            analytic.dibaRoundUs(ring) / 1000.0;
        table.addRow({Table::num((long long)n),
                      Table::num(c_des, 2), Table::num(c_model, 2),
                      Table::num(d_des, 3), Table::num(d_model, 3),
                      Table::num(c_des / d_des, 0)});
    }
    table.print(std::cout);
    std::cout
        << "\nShape: both models agree that the coordinator round "
           "is ~N x (read+write) while a ring DiBA round costs a "
           "couple of reads regardless of N.\n";

    // ---- multi-lane batch engine -------------------------------
    const std::size_t lane_n = smoke ? 400 : 3200;
    const std::size_t trials = smoke ? 2 : 15;
    const auto lanes = laneGrid(lane_n);
    PacketLevelBatch batch(lanes);

    const auto solo = standaloneLanes(lanes);
    const auto batched = batch.dibaRoundUs();
    bool bitwise_ok = solo.size() == batched.size();
    for (std::size_t r = 0; bitwise_ok && r < solo.size(); ++r)
        bitwise_ok = solo[r] == batched[r];

    const auto t_solo = bench::timeRounds(
        lane_n, 1, [&] { (void)standaloneLanes(lanes); }, trials);
    const auto t_batch = bench::timeRounds(
        lane_n, 1, [&] { (void)batch.dibaRoundUs(); }, trials);
    const double speedup =
        t_solo.ms_per_round / t_batch.ms_per_round;

    bench::banner(
        "Multi-lane packet engine",
        "R=8 lanes (4 drop rates x 2 overlays), n=" +
            std::to_string(lane_n) +
            "; one calendar-queue sweep vs lane-by-lane DES");
    Table lt({"lane", "overlay", "drop_pct", "standalone_ms",
              "batched_ms", "bitwise"});
    for (std::size_t r = 0; r < lanes.size(); ++r)
        lt.addRow({Table::num((long long)r),
                   std::string(r < 4 ? "ring" : "chordal"),
                   Table::num(100.0 * lanes[r].drop_rate, 0),
                   Table::num(solo[r] / 1000.0, 4),
                   Table::num(batched[r] / 1000.0, 4),
                   std::string(solo[r] == batched[r] ? "yes"
                                                     : "NO")});
    lt.print(std::cout);
    std::cout << "\naggregate: standalone "
              << Table::num(t_solo.ms_per_round, 2)
              << " ms, batched "
              << Table::num(t_batch.ms_per_round, 2) << " ms ("
              << Table::num(speedup, 2) << "x)\n";

    tools::BenchJsonWriter json;
    json.record()
        .field("bench", "packet_lanes")
        .field("n", lane_n)
        .field("lanes", lanes.size())
        .field("ms_per_round", t_batch.ms_per_round)
        .field("speedup_x", speedup)
        .field("rounds", t_batch.rounds)
        .field("peak_rss_mb", bench::peakRssMb());
    json.save("BENCH_packet_lanes.json");

    if (!bitwise_ok)
        std::cout << "FAIL: batched lane makespans are not "
                     "bitwise equal to the standalone DES\n";
    const bool speed_ok = smoke || speedup >= 2.0;
    if (!speed_ok)
        std::cout << "FAIL: aggregate lane speedup "
                  << Table::num(speedup, 2) << "x < 2x\n";
    return bitwise_ok && speed_ok ? 0 : 1;
}
