/**
 * @file
 * Table 4.2 communication columns re-derived from the packet-level
 * discrete-event fabric simulation (store-and-forward NICs,
 * ToR/core switches, serialized protocol-stack reads), validating
 * the coarse queueing model used by the main Table 4.2 bench: the
 * coordinator round grows linearly with N while the DiBA round is
 * flat, so at scale the coordinator-based schemes pay orders of
 * magnitude more per iteration.
 *
 * Second half: the multi-lane batch engine
 * (net/packet_sim_batch.hh).  Grids of R in {4, 8, 16, 32} round
 * configurations (drop rate x overlay degree) run once
 * lane-by-lane through the standalone simulator, once as a single
 * serial calendar-queue sweep, and once lane-chunked across the
 * hardware threads; every lane's makespan must match the
 * standalone value BITWISE in every engine (the engines share
 * packet generation, launch-jitter hashing and the (time, packet,
 * stage) event order), and each width is timed against the
 * lane-by-lane loop.  Emits one BENCH_packet_lanes.json row per
 * (R, engine) whose speedup_x bench_compare.py gates against the
 * committed baseline; exits non-zero on any bitwise mismatch or if
 * the serial R=8 speedup falls under 1.7x (smoke mode skips the
 * speedup bar, not the bitwise bar).  The absolute bar is a
 * last-resort floor only: it sits below the documented ~13%
 * host-to-host timing drift of the shared bench machine (the seed
 * engine itself measures anywhere from 1.9x to 2.3x across days on
 * identical binaries); the tight gate is bench_compare.py holding
 * every (R, engine) row's speedup_x within the perf threshold of
 * the committed baseline.
 */

#include <cstdlib>

#include "bench/common.hh"
#include "net/packet_sim.hh"
#include "net/packet_sim_batch.hh"
#include "tools/bench_json.hh"

using namespace dpc;

namespace {

/**
 * The R-lane grid: lane r cycles through 4 drop rates (r % 4) and
 * 2 overlay degrees ((r / 4) % 2), so every width's first 8 lanes
 * are the classic 4 x 2 grid and wider grids repeat it with fresh
 * loss seeds (0xfab1 + r stays distinct per lane).
 */
std::vector<PacketLane>
laneGrid(std::size_t n, std::size_t R)
{
    const double drops[] = {0.0, 0.05, 0.1, 0.2};
    Rng topo(17);
    const Graph ring = makeRing(n);
    const Graph chordal = makeChordalRing(n, n / 8, topo);
    std::vector<PacketLane> lanes;
    lanes.reserve(R);
    for (std::size_t r = 0; r < R; ++r) {
        PacketLane l;
        l.overlay = (r / 4) % 2 ? chordal : ring;
        l.drop_rate = drops[r % 4];
        l.loss_seed = 0xfab1 + r; // distinct per lane
        lanes.push_back(std::move(l));
    }
    return lanes;
}

/** All lanes through the standalone simulator, one at a time. */
std::vector<double>
standaloneLanes(const std::vector<PacketLane> &lanes)
{
    std::vector<double> out;
    out.reserve(lanes.size());
    for (const PacketLane &l : lanes) {
        PacketLevelSim sim(l.params);
        Rng rng(l.loss_seed);
        out.push_back(sim.dibaRoundLossyUs(l.overlay, l.drop_rate,
                                           rng, l.max_retx));
    }
    return out;
}

} // namespace

int
main()
{
    const bool smoke = std::getenv("DPC_BENCH_SMOKE") != nullptr;
    bench::banner("Table 4.2 (packet-level cross-check)",
                  "Per-iteration communication time (ms) from the "
                  "DES fabric vs. the analytic queueing model");

    PacketLevelSim des;
    CommModel analytic;
    Rng rng(91);

    Table table({"nodes", "coord_des_ms", "coord_model_ms",
                 "diba_des_ms", "diba_model_ms", "ratio_at_scale"});
    const std::vector<std::size_t> sizes =
        smoke ? std::vector<std::size_t>{400}
              : std::vector<std::size_t>{400, 800, 1600, 3200,
                                         6400};
    for (std::size_t n : sizes) {
        const double c_des =
            des.coordinatorRoundUs(n, rng) / 1000.0;
        const double c_model =
            analytic.coordinatorRoundUs(n, rng) / 1000.0;
        const auto ring = makeRing(n);
        const double d_des = des.dibaRoundUs(ring, rng) / 1000.0;
        const double d_model =
            analytic.dibaRoundUs(ring) / 1000.0;
        table.addRow({Table::num((long long)n),
                      Table::num(c_des, 2), Table::num(c_model, 2),
                      Table::num(d_des, 3), Table::num(d_model, 3),
                      Table::num(c_des / d_des, 0)});
    }
    table.print(std::cout);
    std::cout
        << "\nShape: both models agree that the coordinator round "
           "is ~N x (read+write) while a ring DiBA round costs a "
           "couple of reads regardless of N.\n";

    // ---- multi-lane batch engine -------------------------------
    const std::size_t lane_n = smoke ? 400 : 3200;
    const std::size_t trials = smoke ? 2 : 15;
    const std::size_t mt_threads = ThreadPool::hardwareChunks();
    const std::vector<std::size_t> widths =
        smoke ? std::vector<std::size_t>{4, 8}
              : std::vector<std::size_t>{4, 8, 16, 32};

    bench::banner(
        "Multi-lane packet engine",
        "R in {4, 8, 16, 32} lanes (4 drop rates x 2 overlays), "
        "n=" + std::to_string(lane_n) +
            "; calendar-queue sweep (serial and lane-chunked over " +
            std::to_string(mt_threads) +
            " threads) vs lane-by-lane DES");
    Table lt({"R", "engine", "threads", "standalone_ms",
              "batched_ms", "speedup_x", "bitwise"});
    tools::BenchJsonWriter json;
    bool bitwise_ok = true;
    bool speed_ok = true;

    for (const std::size_t R : widths) {
        const auto lanes = laneGrid(lane_n, R);
        const auto solo = standaloneLanes(lanes);
        const auto t_solo = bench::timeRounds(
            lane_n, 1, [&] { (void)standaloneLanes(lanes); },
            trials);

        struct Spec
        {
            const char *name;
            std::size_t threads;
        };
        const Spec specs[] = {
            {"batch", 0},
            {"batch_mt", mt_threads},
        };
        for (const Spec &s : specs) {
            PacketLevelBatch batch(lanes, s.threads);
            const auto batched = batch.dibaRoundUs();
            bool row_bitwise = solo.size() == batched.size();
            for (std::size_t r = 0; row_bitwise && r < solo.size();
                 ++r)
                row_bitwise = solo[r] == batched[r];
            bitwise_ok = bitwise_ok && row_bitwise;
            if (!row_bitwise)
                std::cout << "FAIL: " << s.name << " R=" << R
                          << " lane makespans are not bitwise "
                             "equal to the standalone DES\n";

            const auto t_batch = bench::timeRounds(
                lane_n, 1, [&] { (void)batch.dibaRoundUs(); },
                trials);
            const double speedup =
                t_solo.ms_per_round / t_batch.ms_per_round;
            lt.addRow({Table::num((long long)R),
                       std::string(s.name),
                       Table::num((long long)s.threads),
                       Table::num(t_solo.ms_per_round, 2),
                       Table::num(t_batch.ms_per_round, 2),
                       Table::num(speedup, 2),
                       std::string(row_bitwise ? "yes" : "NO")});
            json.record()
                .field("bench", "packet_lanes")
                .field("engine", s.name)
                .field("n", lane_n)
                .field("lanes", R)
                .field("threads", s.threads)
                .field("ms_per_round", t_batch.ms_per_round)
                .field("speedup_x", speedup)
                .field("rounds", t_batch.rounds)
                .field("peak_rss_mb", bench::peakRssMb());

            // The absolute floor rides on the serial R=8 engine
            // (the classic grid); wider and threaded rows -- and
            // the tight, host-relative bound for every row -- are
            // gated against their baselines by bench_compare.py.
            if (!smoke && R == 8 && s.threads == 0 &&
                speedup < 1.7) {
                speed_ok = false;
                std::cout << "FAIL: serial R=8 lane speedup "
                          << Table::num(speedup, 2) << "x < 1.7x\n";
            }
        }
    }
    lt.print(std::cout);
    json.save("BENCH_packet_lanes.json");

    return bitwise_ok && speed_ok ? 0 : 1;
}
