/**
 * @file
 * Figs. 4.8 / 4.9 reproduction: a ring of N=100 nodes settles,
 * then node i=50 switches to a very different utility.  Fig. 4.8:
 * the absolute change of the constraint estimates |e_i| spreads
 * outward over rounds while decaying in magnitude.  Fig. 4.9: the
 * final |delta p_i| after re-settling is concentrated near the
 * perturbed node.  A second section sweeps the perturbation
 * magnitude with every strength as one lane of a ReplicaBatch
 * seeded from the settled allocation.
 */

#include <cmath>

#include "alloc/replica_batch.hh"
#include "bench/common.hh"
#include "util/stats.hh"

using namespace dpc;

int
main()
{
    bench::banner("Figures 4.8 and 4.9",
                  "Ring N=100; utility change at node 50; estimate "
                  "disturbance over rounds and final power shifts");

    const std::size_t n = 100;
    const auto prob = bench::npbProblem(n, 172.0, 41);
    DibaAllocator diba(makeRing(n));
    diba.reset(prob);
    for (int it = 0; it < 6000; ++it)
        diba.iterate();

    const auto e0 = diba.estimates();
    const auto p0 = diba.power();

    // Perturb node 50 to the opposite workload class so the change
    // genuinely shifts its power demand.
    const auto &u50 = *prob.utilities[50];
    const bool saturating =
        u50.value(u50.minPower()) / u50.peakValue() > 0.55;
    diba.setUtility(
        50, std::make_shared<QuadraticUtility>(
                saturating ? QuadraticUtility::fromShape(
                                 0.18, 0.03, 120.0, 220.0)
                           : QuadraticUtility::fromShape(
                                 0.88, 1.0, 120.0, 220.0)));

    // Snapshot |e - e0| at a few round counts (Fig. 4.8 phases).
    const std::vector<int> phases{1, 5, 20, 100};
    std::vector<std::vector<double>> snapshots;
    int done = 0;
    for (int target : phases) {
        while (done < target) {
            diba.iterate();
            ++done;
        }
        std::vector<double> delta(n);
        for (std::size_t i = 0; i < n; ++i)
            delta[i] = std::fabs(diba.estimates()[i] - e0[i]);
        snapshots.push_back(std::move(delta));
    }
    // Settle fully for Fig. 4.9.
    for (int it = done; it < 6000; ++it)
        diba.iterate();

    Table table({"node", "dist_to_50", "|de|@1", "|de|@5",
                 "|de|@20", "|de|@100", "|dp|_final"});
    for (std::size_t i = 30; i <= 70; i += 2) {
        const std::size_t dist = i > 50 ? i - 50 : 50 - i;
        table.addRow(
            {Table::num((long long)i), Table::num((long long)dist),
             Table::num(snapshots[0][i], 4),
             Table::num(snapshots[1][i], 4),
             Table::num(snapshots[2][i], 4),
             Table::num(snapshots[3][i], 4),
             Table::num(std::fabs(diba.power()[i] - p0[i]), 3)});
    }
    table.print(std::cout);

    // Locality summary (medians: a handful of knife-edge servers
    // anywhere on the ring may flip with the small global price
    // shift, which inflates means without contradicting the
    // paper's "only few nodes need to adjust" reading).
    std::vector<double> near, far;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t d =
            std::min(i > 50 ? i - 50 : 50 - i,
                     n - (i > 50 ? i - 50 : 50 - i));
        const double dp = std::fabs(diba.power()[i] - p0[i]);
        if (d >= 1 && d <= 5)
            near.push_back(dp);
        else if (d >= 30)
            far.push_back(dp);
    }
    std::cout << "\nMean |dp| at ring distance 1-5: "
              << Table::num(mean(near), 3)
              << " W (median " << Table::num(percentile(near, 50.0), 3)
              << "); at distance >= 30: " << Table::num(mean(far), 3)
              << " W (median " << Table::num(percentile(far, 50.0), 3)
              << ").\nPaper shape: 'only few nodes in the "
                 "vicinity of the perturbed server need to adjust "
                 "their power'.\n";

    // Batched perturbation sweep: the study above, repeated for a
    // spectrum of perturbation strengths, used to re-run the whole
    // engine once per magnitude.  The magnitudes are independent
    // replicas of one cluster, so they run as lanes of a single
    // ReplicaBatch seeded from the settled allocation -- one
    // lockstep pass answers the entire locality-vs-magnitude
    // question.  Lane 0 keeps the original workload as the
    // control.
    bench::banner("Fig. 4.8/4.9 (magnitude sweep)",
                  "Perturbation strength vs. locality: lanes of "
                  "one ReplicaBatch, seeded from the settled "
                  "allocation, each with a different utility swap "
                  "at node 50");

    const std::vector<double> shapes{0.30, 0.55, 0.75, 0.95};
    std::vector<ReplicaSpec> specs(shapes.size() + 1);
    for (std::size_t r = 0; r < specs.size(); ++r)
        specs[r].seed = r + 1;
    ReplicaBatch sweep(makeRing(n), prob, specs);
    sweep.seedFrom(p0);
    for (std::size_t r = 0; r < shapes.size(); ++r)
        sweep.setUtility(r + 1, 50,
                         QuadraticUtility::fromShape(
                             shapes[r], shapes[r], 120.0, 220.0));
    std::size_t sweep_rounds = 0;
    while (!sweep.allConverged() && sweep_rounds < 6000) {
        sweep.stepAll();
        ++sweep_rounds;
    }

    Table mag({"lane", "shape_r0", "|dp|@50", "med_|dp|_d1-5",
               "med_|dp|_d>=30", "total_W"});
    for (std::size_t r = 0; r < specs.size(); ++r) {
        const auto p = sweep.powerOf(r);
        std::vector<double> near_r, far_r;
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t d =
                std::min(i > 50 ? i - 50 : 50 - i,
                         n - (i > 50 ? i - 50 : 50 - i));
            const double dp = std::fabs(p[i] - p0[i]);
            if (d >= 1 && d <= 5)
                near_r.push_back(dp);
            else if (d >= 30)
                far_r.push_back(dp);
        }
        mag.addRow(
            {Table::num(static_cast<long long>(r)),
             std::string(r == 0 ? "control"
                                : Table::num(shapes[r - 1], 2)),
             Table::num(std::fabs(p[50] - p0[50]), 3),
             Table::num(percentile(near_r, 50.0), 3),
             Table::num(percentile(far_r, 50.0), 3),
             Table::num(sweep.totalPower(r), 1)});
    }
    mag.print(std::cout);
    std::cout << "\nAll " << specs.size()
              << " magnitudes settled in one batched run ("
              << sweep_rounds
              << " lockstep rounds); disturbance at distance >= 30 "
                 "stays near zero across the sweep while the "
                 "near-field response grows with the perturbation "
                 "strength.\n";
    return 0;
}
