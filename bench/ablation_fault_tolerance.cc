/**
 * @file
 * Fault-tolerance ablation (the Sec. 4.2 motivation): servers die
 * mid-operation while the gossip transport itself drops messages.
 * On a plain ring the overlay would disconnect; on the
 * chord-equipped ring the paper recommends, the survivors absorb
 * each failure within rounds -- the dead server's power is
 * released to its neighbours, the budget guarantee never breaks,
 * and the surviving allocation re-converges to the survivors'
 * optimum.  A centralized scheme loses the *entire* cluster when
 * its coordinator is the victim; here any single node is
 * expendable.
 *
 * Built on the dpc::fault subsystem: the failure schedule is a
 * declarative FaultPlan, every synchronized round runs through a
 * 2%-loss LossyChannel, and an InvariantChecker machine-checks
 * budget safety, mask consistency and estimate-sum conservation
 * after every single round -- so the "no violations" line at the
 * bottom is an audited statement, not a spot check.
 */

#include "bench/common.hh"
#include "fault/session.hh"
#include "util/stats.hh"

using namespace dpc;

int
main()
{
    bench::banner("Fault-tolerance ablation",
                  "N=200 chordal ring (40 chords); a server dies "
                  "every 500 rounds under 2% gossip loss; budget "
                  "guarantee and optimality of the survivors");

    const std::size_t n = 200;
    Rng rng(81);
    const auto prob = bench::npbProblem(n, 172.0, 83);
    DibaAllocator diba(makeChordalRing(n, 40, rng));
    diba.reset(prob);
    for (int it = 0; it < 3000; ++it)
        diba.iterate();

    // Six distinct victims, one every 500 rounds.
    const std::size_t waves = 6;
    std::vector<std::size_t> victims;
    while (victims.size() < waves) {
        const std::size_t v = rng.index(n);
        bool fresh = true;
        for (std::size_t w : victims)
            fresh &= w != v;
        if (fresh)
            victims.push_back(v);
    }
    FaultPlan plan;
    LossyChannel::Config loss;
    loss.drop_rate = 0.02;
    plan.loss(loss).seed(0xab1a7e);
    for (std::size_t w = 0; w < waves; ++w)
        plan.crashAt(static_cast<double>(w) * 500.0, victims[w]);

    FaultSession session(diba, plan);

    Table table({"round", "failures", "active", "total_kW",
                 "budget_kW", "survivor_frac_of_opt"});

    auto survivorFraction = [&]() {
        AllocationProblem::Builder reduced;
        std::vector<double> live;
        for (std::size_t i = 0; i < n; ++i) {
            if (diba.isActive(i)) {
                reduced.add(prob.utilities[i]);
                live.push_back(diba.power()[i]);
            }
        }
        const auto sub = reduced.budget(prob.budget).build();
        const auto opt = solveKkt(sub);
        return totalUtility(sub.utilities, live) / opt.utility;
    };

    long long round = 0;
    auto report = [&]() {
        table.addRow(
            {Table::num(round),
             Table::num((long long)(n - diba.numActive())),
             Table::num((long long)diba.numActive()),
             Table::num(diba.totalPower() / 1000.0, 2),
             Table::num(prob.budget / 1000.0, 2),
             Table::num(survivorFraction(), 4)});
    };
    report();

    for (std::size_t wave = 0; wave < waves; ++wave) {
        for (int it = 0; it < 500; ++it) {
            session.stepRound();
            ++round;
        }
        report();
    }
    table.print(std::cout);

    const auto &stats = session.channel().stats();
    std::cout << "\nGossip pairs offered: " << stats.offered
              << ", dropped: " << stats.dropped << " ("
              << Table::num(100.0 * session.channel().lossRate(), 2)
              << "%)\nInvariant audits passed: "
              << session.checker().roundsChecked()
              << " rounds (worst conservation residual "
              << session.checker().worstResidual()
              << " W); budget violations: none"
              << "\nPaper claim reproduced: 'the failure in one or "
                 "few servers ... can be mitigated as the overall "
                 "performance of the system does not hinge on a "
                 "particular unit'.\n";
    return 0;
}
