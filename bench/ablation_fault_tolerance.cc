/**
 * @file
 * Fault-tolerance ablation (the Sec. 4.2 motivation): servers die
 * mid-operation.  On a plain ring the overlay would disconnect; on
 * the chord-equipped ring the paper recommends, the survivors
 * absorb each failure within rounds -- the dead server's power is
 * released to its neighbours, the budget guarantee never breaks,
 * and the surviving allocation re-converges to the survivors'
 * optimum.  A centralized scheme loses the *entire* cluster when
 * its coordinator is the victim; here any single node is
 * expendable.
 */

#include "bench/common.hh"
#include "util/stats.hh"

using namespace dpc;

int
main()
{
    bench::banner("Fault-tolerance ablation",
                  "N=200 chordal ring (40 chords); a server dies "
                  "every 500 rounds; budget guarantee and "
                  "optimality of the survivors");

    const std::size_t n = 200;
    Rng rng(81);
    const auto prob = bench::npbProblem(n, 172.0, 83);
    DibaAllocator diba(makeChordalRing(n, 40, rng));
    diba.reset(prob);
    for (int it = 0; it < 3000; ++it)
        diba.iterate();

    Table table({"round", "failures", "active", "total_kW",
                 "budget_kW", "survivor_frac_of_opt"});

    auto survivorFraction = [&]() {
        AllocationProblem reduced;
        std::vector<double> live;
        for (std::size_t i = 0; i < n; ++i) {
            if (diba.isActive(i)) {
                reduced.utilities.push_back(prob.utilities[i]);
                live.push_back(diba.power()[i]);
            }
        }
        reduced.budget = prob.budget;
        const auto opt = solveKkt(reduced);
        return totalUtility(reduced.utilities, live) / opt.utility;
    };

    std::size_t failures = 0;
    bool violated = false;
    long long round = 0;
    auto report = [&]() {
        table.addRow({Table::num(round),
                      Table::num((long long)failures),
                      Table::num((long long)diba.numActive()),
                      Table::num(diba.totalPower() / 1000.0, 2),
                      Table::num(prob.budget / 1000.0, 2),
                      Table::num(survivorFraction(), 4)});
    };
    report();

    for (int wave = 0; wave < 6; ++wave) {
        // Kill a random still-active node.
        std::size_t victim;
        do {
            victim = rng.index(n);
        } while (!diba.isActive(victim));
        diba.failNode(victim);
        ++failures;
        for (int it = 0; it < 500; ++it) {
            diba.iterate();
            ++round;
            violated |= diba.totalPower() >= prob.budget;
        }
        report();
    }
    table.print(std::cout);

    std::cout << "\nBudget violations across all failures: "
              << (violated ? "YES (bug!)" : "none")
              << "\nPaper claim reproduced: 'the failure in one or "
                 "few servers ... can be mitigated as the overall "
                 "performance of the system does not hinge on a "
                 "particular unit'.\n";
    return 0;
}
