/**
 * @file
 * Figs. 3.10 / 3.11 reproduction: self-consistent partitioning of
 * a total datacenter budget into computing and cooling power
 * (Algorithm 1) for a 3200-server / 80-rack room, with the
 * multiple-choice knapsack budgeter allocating the computing share
 * at every trial split.  Fig. 3.10: the computing/cooling breakup
 * across five budgets (cooling ~30-38%, share rising with the
 * budget).  Fig. 3.11: the iteration trace for the largest budget
 * approaching the self-consistent point.
 */

#include <iostream>

#include "alloc/knapsack.hh"
#include "thermal/total_budgeter.hh"
#include "util/table.hh"
#include "workload/generator.hh"

using namespace dpc;

int
main()
{
    std::cout << "\n=== Figures 3.10 and 3.11 ===\n"
              << "Self-consistent total power budgeting, 3200 "
                 "servers / 80 racks\n\n";

    const std::size_t n = 3200;
    const std::size_t racks = 80;
    Rng rng(53);
    const auto cluster = drawSpecMixAssignment(
        n, MixKind::HomogeneousWithinServer, rng);

    CapGrid grid;
    KnapsackBudgeter budgeter(grid);
    std::vector<std::vector<double>> values(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < grid.levels; ++j)
            values[i].push_back(
                cluster[i].utility->value(grid.capAt(j)) /
                cluster[i].utility->peakValue());

    const auto d = makeSyntheticRecirculation(8, 10, 0.25, rng);
    HeatModel heat(d, std::vector<double>(racks, 500.0), 24.0);
    CoolingModel::Config ccfg;
    ccfg.rated_power_w = 165.0 * static_cast<double>(n);
    CoolingModel cooling(heat, CopModel(), ccfg);
    TotalPowerBudgeter total(cooling);

    auto allocate = [&](double b_s) {
        const auto res = budgeter.allocate(values, b_s);
        std::vector<double> rack_power(racks, 0.0);
        for (std::size_t i = 0; i < n; ++i)
            rack_power[i / (n / racks)] += res.power[i];
        return rack_power;
    };

    Table fig10({"total_MW", "computing_MW", "cooling_MW",
                 "cooling_share_%", "t_sup_C", "iters"});
    TotalPowerBudgeter::Result last;
    for (double b = 0.60e6; b <= 0.72e6 + 1.0; b += 0.03e6) {
        const auto res = total.partition(b, allocate);
        fig10.addRow(
            {Table::num(b / 1e6, 2), Table::num(res.b_s / 1e6, 3),
             Table::num(res.b_crac / 1e6, 3),
             Table::num(100.0 * res.b_crac / b, 1),
             Table::num(res.t_sup, 1),
             Table::num((long long)res.trace.size())});
        last = res;
    }
    std::cout << "--- Fig 3.10: breakup across budgets ---\n";
    fig10.print(std::cout);

    std::cout << "\n--- Fig 3.11: iteration trace at 0.72 MW ---\n";
    Table fig11({"iter", "B_s_MW", "B_crac_MW", "B_s+B_crac_MW",
                 "t_sup_C"});
    for (std::size_t k = 0; k < last.trace.size(); ++k) {
        const auto &t = last.trace[k];
        fig11.addRow({Table::num((long long)k),
                      Table::num(t.b_s / 1e6, 4),
                      Table::num(t.b_crac / 1e6, 4),
                      Table::num((t.b_s + t.b_crac) / 1e6, 4),
                      Table::num(t.t_sup, 2)});
    }
    fig11.print(std::cout);
    std::cout << "\nPaper shape: cooling takes ~30-38% of the "
                 "total, the share (and its growth rate) rising "
                 "with the budget; the trace walks the B_s+B_crac=B "
                 "line to the self-consistent point.\n";
    return 0;
}
