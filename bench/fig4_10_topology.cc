/**
 * @file
 * Fig. 4.10 reproduction: 100 connected Erdos-Renyi random graphs
 * on N=100 nodes with varying edge counts; for each, the number of
 * DiBA iterations to reach 99% of the optimal utility, plus the
 * 3rd-order polynomial regression of iterations on the average
 * degree.  The paper's shape: convergence time falls steeply with
 * the average connectivity degree.
 */

#include "bench/common.hh"
#include "util/fit.hh"
#include "util/stats.hh"

using namespace dpc;

int
main()
{
    bench::banner("Figure 4.10",
                  "DiBA iterations to 99% optimal vs. average "
                  "degree over 100 connected G(n, m) samples, "
                  "N=100");

    const std::size_t n = 100;
    Rng rng(43);
    const auto prob = bench::npbProblem(n, 172.0, 47);
    const auto oracle = solveKkt(prob);

    std::vector<double> degrees, iters;
    for (int sample = 0; sample < 100; ++sample) {
        // Edge counts from barely-connected (tree + epsilon) to
        // dense; below ~n ln(n)/2 edges a raw G(n, m) draw is
        // essentially never connected, so sparse samples come from
        // the spanning-tree-based connected generator.
        const std::size_t m =
            110 + static_cast<std::size_t>(rng.uniform(0.0, 890.0));
        auto g = m >= 260 ? makeConnectedErdosRenyi(n, m, rng)
                          : makeRandomConnectedGraph(n, m, rng);
        const double degree = g.averageDegree();
        DibaAllocator diba(std::move(g));
        const auto its = bench::dibaIterationsToFraction(
            diba, prob, oracle.utility, 0.99);
        degrees.push_back(degree);
        iters.push_back(static_cast<double>(its));
    }

    // Bucketed view of the raw samples.
    Table table({"avg_degree_bucket", "samples", "mean_iters",
                 "min_iters", "max_iters"});
    for (double lo = 2.0; lo < 20.0; lo += 3.0) {
        std::vector<double> in_bucket;
        for (std::size_t i = 0; i < degrees.size(); ++i)
            if (degrees[i] >= lo && degrees[i] < lo + 3.0)
                in_bucket.push_back(iters[i]);
        if (in_bucket.empty())
            continue;
        table.addRow(
            {Table::num(lo, 0) + "-" + Table::num(lo + 3.0, 0),
             Table::num((long long)in_bucket.size()),
             Table::num(mean(in_bucket), 1),
             Table::num(minElement(in_bucket), 0),
             Table::num(maxElement(in_bucket), 0)});
    }
    table.print(std::cout);

    const auto poly = polyfit(degrees, iters, 3);
    std::cout << "\n3rd-order regression (paper's red line): "
              << "iters = " << Table::num(poly[0], 2) << " + "
              << Table::num(poly[1], 2) << " d + "
              << Table::num(poly[2], 3) << " d^2 + "
              << Table::num(poly[3], 4) << " d^3\n";

    // Shape check: strong negative correlation.
    const double lo_mean = [&] {
        std::vector<double> xs;
        for (std::size_t i = 0; i < degrees.size(); ++i)
            if (degrees[i] < 5.0)
                xs.push_back(iters[i]);
        return xs.empty() ? 0.0 : mean(xs);
    }();
    const double hi_mean = [&] {
        std::vector<double> xs;
        for (std::size_t i = 0; i < degrees.size(); ++i)
            if (degrees[i] > 12.0)
                xs.push_back(iters[i]);
        return xs.empty() ? 0.0 : mean(xs);
    }();
    std::cout << "Mean iterations, degree<5: "
              << Table::num(lo_mean, 1) << "; degree>12: "
              << Table::num(hi_mean, 1)
              << " (paper: strong inverse correlation).\n";
    return 0;
}
