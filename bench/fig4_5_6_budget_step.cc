/**
 * @file
 * Figs. 4.5 / 4.6 reproduction: iteration-resolution view of a
 * budget drop (190 kW -> 170 kW) and a budget jump (170 kW ->
 * 190 kW) for N=1000 servers.  The drop is absorbed immediately
 * (local shedding inside the announcement step); the jump is
 * climbed over subsequent consensus rounds, always from below.
 */

#include "bench/common.hh"

using namespace dpc;

namespace {

void
runStep(const char *title, double from_wpn, double to_wpn)
{
    const std::size_t n = 1000;
    auto prob = bench::npbProblem(n, from_wpn, 31);
    DibaAllocator diba(makeRing(n));
    diba.reset(prob);
    for (int it = 0; it < 4000; ++it)
        diba.iterate();

    const double new_budget = to_wpn * static_cast<double>(n);
    auto eval_prob = prob;
    eval_prob.budget = new_budget;
    const auto oracle = solveKkt(eval_prob);
    const double snp_opt = bench::snpOf(eval_prob, oracle.power);

    std::cout << "\n--- " << title << " ---\n";
    Table table({"round", "total_kW", "budget_kW", "snp",
                 "snp_opt_after"});
    auto sample = [&](long long round) {
        table.addRow({Table::num(round),
                      Table::num(diba.totalPower() / 1000.0, 2),
                      Table::num(diba.budget() / 1000.0, 1),
                      Table::num(
                          bench::snpOf(eval_prob, diba.power()), 4),
                      Table::num(snp_opt, 4)});
    };
    sample(-1); // settled at the old budget
    diba.setBudget(new_budget);
    sample(0); // immediately after the announcement
    long long round = 0;
    for (int block : {1, 4, 15, 30, 50, 100, 300, 800, 1500}) {
        while (round < block) {
            diba.iterate();
            ++round;
        }
        sample(round);
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    bench::banner("Figures 4.5 and 4.6",
                  "Budget drop 190->170 kW and jump 170->190 kW, "
                  "N=1000, iteration resolution");

    runStep("Fig 4.5: drop 190 kW -> 170 kW", 190.0, 170.0);
    runStep("Fig 4.6: jump 170 kW -> 190 kW", 170.0, 190.0);

    std::cout << "\nPaper shape: after a drop the total power is "
                 "under the new budget within the announcement "
                 "step; after a jump the power ramps up from below "
                 "and settles at the new optimum.\n";
    return 0;
}
