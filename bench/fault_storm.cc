/**
 * @file
 * Fault storm sweep: how much transport loss and node churn can
 * DiBA absorb before its allocation quality degrades?
 *
 * Grid: pair-drop rate 0%..50% x churn off / on (5 crashes + 3
 * rejoins drawn by FaultPlan::randomChurn).  The six loss-only
 * cells share one live topology and differ only in their drop
 * rate, so they run as six lanes of a single ReplicaBatch -- one
 * lockstep pass over the cluster per round instead of six separate
 * engine runs -- with the lane budget invariant audited every
 * round.  The churn cells mutate cluster membership (which lanes
 * cannot share), so each keeps its own FaultSession with the
 * lossy channel's stale-delivery tail and the full InvariantChecker
 * audit.  Every cell then scores its surviving allocation against
 * the KKT optimum of the survivors' problem.
 *
 * Emits BENCH_fault_storm.json (one record per cell) for
 * machine-readable tracking, next to the human-readable table.
 * Everything is fixed-seed: rerunning the binary reproduces every
 * trajectory bit for bit.
 */

#include <cmath>

#include "alloc/replica_batch.hh"
#include "bench/common.hh"
#include "fault/session.hh"
#include "tools/bench_json.hh"
#include "util/stats.hh"

using namespace dpc;

namespace {

struct CellResult
{
    std::size_t active = 0;
    double util_frac = 0.0;
    double total_power = 0.0;
    double observed_loss = 0.0;
    double worst_residual = 0.0;
    std::size_t quiet_rounds = 0;
    std::size_t rounds = 0;
};

/** All loss-only cells at once: one batched lockstep run, one
 * lane per drop rate, per-round invariant audit per lane. */
std::vector<CellResult>
runLossCells(const AllocationProblem &prob,
             const std::vector<double> &drops)
{
    const std::size_t n = prob.size();
    const std::size_t rounds = 800;
    Rng topo_rng(7);
    const Graph g = makeChordalRing(n, 30, topo_rng);

    std::vector<ReplicaSpec> specs;
    for (std::size_t r = 0; r < drops.size(); ++r)
        specs.push_back(ReplicaSpec{
            0x5709a + static_cast<std::uint64_t>(
                          std::lround(drops[r] * 100.0)),
            drops[r], 0.0});
    ReplicaBatch batch(g, prob, specs);

    std::vector<double> worst(drops.size(), 0.0);
    std::vector<std::size_t> quiet_total(drops.size(), 0);
    for (std::size_t round = 0; round < rounds; ++round) {
        batch.stepAll();
        for (std::size_t r = 0; r < drops.size(); ++r) {
            const double resid = std::fabs(
                sum(batch.estimatesOf(r)) -
                (batch.totalPower(r) - batch.budget(r)));
            worst[r] = std::max(worst[r], resid);
            if (batch.totalPower(r) >= batch.budget(r))
                worst[r] = std::max(worst[r], 1e9); // cap breach
            if (batch.moved(r) <
                DibaAllocator::Config().tolerance)
                ++quiet_total[r];
        }
    }

    const auto opt = solveKkt(prob);
    std::vector<CellResult> cells(drops.size());
    for (std::size_t r = 0; r < drops.size(); ++r) {
        CellResult &cell = cells[r];
        cell.active = n;
        cell.util_frac =
            totalUtility(prob.utilities, batch.powerOf(r)) /
            opt.utility;
        cell.total_power = batch.totalPower(r);
        cell.observed_loss = batch.lossRate(r);
        cell.worst_residual = worst[r];
        cell.quiet_rounds = quiet_total[r];
        cell.rounds = rounds;
    }
    return cells;
}

CellResult
runCell(const AllocationProblem &prob, double drop, bool churn)
{
    const std::size_t n = prob.size();
    const std::size_t rounds = 800;
    Rng topo_rng(7);
    DibaAllocator diba(makeChordalRing(n, 30, topo_rng));
    diba.reset(prob);

    FaultPlan plan =
        churn ? FaultPlan::randomChurn(n, 5, 3,
                                       static_cast<double>(rounds),
                                       0x57a9 + n)
              : FaultPlan();
    LossyChannel::Config loss;
    loss.drop_rate = drop;
    // A staleness tail rides along: 10% of delivered pairs arrive
    // up to 3 rounds late.
    loss.delay_rate = 0.1;
    loss.max_lag = 3;
    plan.loss(loss).seed(0x5709a + static_cast<int>(drop * 100));

    FaultSession session(diba, plan);
    CellResult cell;
    cell.quiet_rounds = session.run(rounds);
    cell.rounds = rounds;

    AllocationProblem::Builder reduced;
    std::vector<double> live;
    for (std::size_t i = 0; i < n; ++i) {
        if (diba.isActive(i)) {
            reduced.add(prob.utilities[i]);
            live.push_back(diba.power()[i]);
        }
    }
    const auto sub = reduced.budget(prob.budget).build();
    const auto opt = solveKkt(sub);
    cell.active = diba.numActive();
    cell.util_frac =
        totalUtility(sub.utilities, live) / opt.utility;
    cell.total_power = diba.totalPower();
    cell.observed_loss = session.channel().lossRate();
    cell.worst_residual = session.checker().worstResidual();
    return cell;
}

} // namespace

int
main()
{
    bench::banner(
        "Fault storm sweep",
        "N=300 chordal ring; pair-drop 0..50% + stale tail, with "
        "and without 5-crash/3-rejoin churn; 800 audited rounds "
        "per cell");

    const std::size_t n = 300;
    const auto prob = bench::npbProblem(n, 172.0, 97);

    Table table({"drop_pct", "churn", "active", "util_frac_of_opt",
                 "total_kW", "observed_loss_pct",
                 "worst_residual_W", "quiet_rounds"});
    tools::BenchJsonWriter json;

    const std::vector<double> drops{0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
    const auto loss_cells = runLossCells(prob, drops);
    for (std::size_t d = 0; d < drops.size(); ++d) {
        const double drop = drops[d];
        for (const bool churn : {false, true}) {
            const CellResult cell =
                churn ? runCell(prob, drop, true) : loss_cells[d];
            table.addRow(
                {Table::num(100.0 * drop, 0),
                 std::string(churn ? "yes" : "no"),
                 Table::num((long long)cell.active),
                 Table::num(cell.util_frac, 4),
                 Table::num(cell.total_power / 1000.0, 2),
                 Table::num(100.0 * cell.observed_loss, 2),
                 Table::num(cell.worst_residual, 10),
                 Table::num((long long)cell.quiet_rounds)});
            json.record()
                .field("bench", "fault_storm")
                .field("n", n)
                .field("drop_rate", drop)
                .field("churn", churn ? "on" : "off")
                .field("active", cell.active)
                .field("util_frac_of_opt", cell.util_frac)
                .field("total_power_w", cell.total_power)
                .field("observed_loss", cell.observed_loss)
                .field("worst_residual_w", cell.worst_residual)
                .field("quiet_rounds", cell.quiet_rounds)
                .field("rounds", cell.rounds);
        }
    }
    table.print(std::cout);
    json.save("BENCH_fault_storm.json");

    std::cout << "\nEvery cell passed the per-round invariant "
                 "audit (budget safety, mask consistency, "
                 "estimate-sum conservation); the six loss-only "
                 "cells ran as one batched lockstep sweep; "
                 "results saved to BENCH_fault_storm.json\n";
    return 0;
}
