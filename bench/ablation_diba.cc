/**
 * @file
 * Ablation of DiBA's design choices (the DESIGN.md call-outs):
 *
 *  - barrier annealing (the interior-point eta schedule) vs. a
 *    fixed barrier at the floor or at the initial weight;
 *  - gated gossip (relative deadband) vs. full exchange;
 *  - step damping;
 *  - synchronous rounds vs. asynchronous gossip ticks (normalized
 *    to the same per-node work).
 *
 * Reported per configuration: synchronous-round equivalents to
 * reach 99% of the oracle utility, the utility fraction reached at
 * a fixed horizon, and the final budget slack.
 */

#include "bench/common.hh"
#include "util/stats.hh"

using namespace dpc;

namespace {

struct Row
{
    std::string label;
    std::size_t rounds_to_99;
    double frac_at_horizon;
    double slack_w;
};

constexpr std::size_t kHorizon = 6000;

Row
runSync(const std::string &label, DibaAllocator::Config cfg,
        const AllocationProblem &prob, double opt)
{
    DibaAllocator diba(makeRing(prob.size()), cfg);
    diba.reset(prob);
    Row row{label, kHorizon, 0.0, 0.0};
    for (std::size_t it = 1; it <= kHorizon; ++it) {
        diba.iterate();
        if (row.rounds_to_99 == kHorizon) {
            const double u =
                totalUtility(prob.utilities, diba.power());
            if (withinFractionOfOptimal(u, opt, 0.99))
                row.rounds_to_99 = it;
        }
    }
    row.frac_at_horizon =
        totalUtility(prob.utilities, diba.power()) / opt;
    row.slack_w = prob.budget - diba.totalPower();
    return row;
}

Row
runAsync(const std::string &label, const AllocationProblem &prob,
         double opt)
{
    DibaAllocator diba(makeRing(prob.size()));
    diba.reset(prob);
    Rng rng(99);
    Row row{label, kHorizon, 0.0, 0.0};
    const std::size_t n = prob.size();
    for (std::size_t round = 1; round <= kHorizon; ++round) {
        // One synchronous round of work ~ n/2 edge activations on
        // a ring (each sync round touches every node once).
        for (std::size_t t = 0; t < n / 2; ++t)
            diba.gossipTick(rng);
        if (row.rounds_to_99 == kHorizon) {
            const double u =
                totalUtility(prob.utilities, diba.power());
            if (withinFractionOfOptimal(u, opt, 0.99))
                row.rounds_to_99 = round;
        }
    }
    row.frac_at_horizon =
        totalUtility(prob.utilities, diba.power()) / opt;
    row.slack_w = prob.budget - diba.totalPower();
    return row;
}

} // namespace

int
main()
{
    bench::banner("DiBA design ablation",
                  "Ring N=200, P=172 W/node; 99%-of-oracle rounds "
                  "(horizon 6000) per configuration");

    const auto prob = bench::npbProblem(200, 172.0, 77);
    const double opt = solveKkt(prob).utility;

    std::vector<Row> rows;

    DibaAllocator::Config base;
    rows.push_back(runSync("default (annealed barrier)", base,
                           prob, opt));

    auto fixed_lo = base;
    fixed_lo.eta_initial = fixed_lo.eta;
    rows.push_back(runSync("fixed barrier at floor (no anneal)",
                           fixed_lo, prob, opt));

    auto fixed_hi = base;
    fixed_hi.eta = fixed_hi.eta_initial;
    rows.push_back(runSync("fixed barrier at initial (loose)",
                           fixed_hi, prob, opt));

    auto gated = base;
    gated.deadband = 0.05;
    rows.push_back(runSync("gated gossip (5% deadband)", gated,
                           prob, opt));

    auto heavy = base;
    heavy.damping = 0.2;
    rows.push_back(runSync("damping 0.2 (over-damped)", heavy,
                           prob, opt));

    auto light = base;
    light.damping = 0.95;
    rows.push_back(runSync("damping 0.95 (aggressive)", light,
                           prob, opt));

    rows.push_back(runAsync("asynchronous gossip (default cfg)",
                            prob, opt));

    Table table({"configuration", "rounds_to_99%",
                 "frac_at_horizon", "final_slack_W"});
    for (const auto &r : rows) {
        table.addRow({r.label,
                      r.rounds_to_99 >= kHorizon
                          ? ">" + Table::num((long long)kHorizon)
                          : Table::num((long long)r.rounds_to_99),
                      Table::num(r.frac_at_horizon, 4),
                      Table::num(r.slack_w, 1)});
    }
    table.print(std::cout);

    std::cout
        << "\nReading: the barrier weight is the transport pipe -- "
           "fixing it at the loose initial value never tightens "
           "onto the budget (large final slack, capped utility), "
           "while the floor value alone can suffice when it "
           "already provides enough per-node slack; the annealed "
           "schedule hedges across floors and initial imbalances. "
           "The deadband trades convergence speed for fewer "
           "exchanges; damping matters little across 0.2-0.95; "
           "asynchronous gossip matches the synchronized rounds "
           "at equal per-node work -- no NTP barrier needed.\n";
    return 0;
}
