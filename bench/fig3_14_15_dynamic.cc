/**
 * @file
 * Figs. 3.14 / 3.15 reproduction: 75 s of cluster operation with
 * the budget re-solved every 15 s.  Servers start at random caps;
 * a 0.66 MW-equivalent budget is applied at t=15 s, re-solved at
 * t=30 s, lowered at t=45 s and re-solved at t=60 s.  Fig. 3.14:
 * SNP over time for knapsack budgeting vs. uniform.  Fig. 3.15:
 * the distribution of per-server caps at each epoch (how the
 * budgeter classifies servers by workload).
 */

#include <iostream>

#include "alloc/knapsack.hh"
#include "metrics/performance.hh"
#include "util/table.hh"
#include "workload/generator.hh"

using namespace dpc;

int
main()
{
    std::cout << "\n=== Figures 3.14 and 3.15 ===\n"
              << "Dynamic budgeting over 75 s, N=1600 servers, "
                 "epochs every 15 s\n\n";

    const std::size_t n = 1600;
    Rng rng(73);
    const auto cluster = drawSpecMixAssignment(
        n, MixKind::HomogeneousWithinServer, rng);
    const auto us = utilitiesOf(cluster);

    CapGrid grid;
    KnapsackBudgeter budgeter(grid);
    std::vector<std::vector<double>> values(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < grid.levels; ++j)
            values[i].push_back(
                us[i]->value(grid.capAt(j)) / us[i]->peakValue());

    // Budgets per epoch (W per server), mirroring the 0.66 -> 0.62
    // MW schedule at the paper's 3200-server scale.
    const double high = 149.0, low = 140.5;

    // Epoch 0: random caps (the paper's random initialization).
    std::vector<double> caps(n);
    for (auto &c : caps)
        c = grid.capAt(rng.index(grid.levels));

    Table fig14({"t_s", "budget_W/srv", "SNP_knapsack",
                 "SNP_uniform"});
    Table fig15({"t_s", "cap130", "cap135", "cap140", "cap145",
                 "cap150", "cap155", "cap160", "cap165"});

    auto histogram = [&](double t,
                         const std::vector<double> &cs) {
        std::vector<long long> bins(grid.levels, 0);
        for (double c : cs)
            ++bins[static_cast<std::size_t>(
                (c - grid.p0) / grid.increment + 0.5)];
        std::vector<std::string> row{Table::num(t, 0)};
        for (auto b : bins)
            row.push_back(Table::num(b));
        fig15.addRow(std::move(row));
    };

    double epoch_budget = 0.0;
    for (int epoch = 0; epoch < 5; ++epoch) {
        const double t = 15.0 * epoch;
        if (epoch >= 1)
            epoch_budget = (epoch >= 3 ? low : high);
        if (epoch >= 1) {
            caps = budgeter
                       .allocate(values, epoch_budget *
                                             static_cast<double>(n))
                       .power;
        }
        const double snp_k = snpGeometric(anpVector(us, caps));

        // Uniform reference at the same budget.
        double snp_u;
        if (epoch == 0) {
            snp_u = snp_k; // both start from the random caps
        } else {
            double share_cap = grid.capAt(0);
            for (std::size_t j = 0; j < grid.levels; ++j)
                if (grid.capAt(j) <= epoch_budget)
                    share_cap = grid.capAt(j);
            snp_u = snpGeometric(anpVector(
                us, std::vector<double>(n, share_cap)));
        }

        fig14.addRow({Table::num(t, 0),
                      epoch == 0 ? "random"
                                 : Table::num(epoch_budget, 1),
                      Table::num(snp_k, 4), Table::num(snp_u, 4)});
        histogram(t, caps);
    }

    std::cout << "--- Fig 3.14: SNP over time ---\n";
    fig14.print(std::cout);
    std::cout << "\n--- Fig 3.15: servers per cap level ---\n";
    fig15.print(std::cout);
    std::cout
        << "\nPaper shape: knapsack SNP consistently above "
           "uniform; caps spread across levels according to "
           "workload characteristics and shift down when the "
           "budget drops at t=45 s.\n";
    return 0;
}
