/**
 * @file
 * Recovery storm: how fast and how well does the self-healing
 * stack (failure detector -> overlay healer -> budget
 * re-federation -> convergence watchdog) restore an audited
 * allocation after correlated faults, with ZERO omniscient calls?
 *
 * Each cell drives a RecoverySession: world events (crashes,
 * rejoins, link cuts) mutate a ground-truth channel and the
 * protocol must infer every one of them from missed gossip pairs.
 * The grid sweeps cluster size x transport loss x churn
 * intensity; one cell adds a deliberate two-cut partition so the
 * healer's spare edges and the re-federation path are both on the
 * score card.
 *
 * Per cell we report
 *   - availability: mean over all rounds of (active nodes /
 *     world-up nodes) -- the serving fraction while the storm and
 *     the recovery are in flight;
 *   - util_frac_during: allocation quality vs the survivors' KKT
 *     oracle sampled right after the last crash lands;
 *   - util_frac_of_opt: the same ratio at the end of the run
 *     (gated by tools/bench_compare.py's quality rule);
 *   - rounds_to_recover: rounds from the last disturbance until
 *     the total in-protocol utility holds steady;
 *   - the protocol action counters (repairs, refederations,
 *     watchdog escalations, detector false positives).
 *
 * Emits BENCH_recovery.json.  Fixed seeds throughout: rerunning
 * the binary reproduces every trajectory bit for bit.
 */

#include <cmath>

#include "alloc/kkt.hh"
#include "bench/common.hh"
#include "fault/recovery.hh"
#include "graph/topologies.hh"
#include "tools/bench_json.hh"
#include "util/stats.hh"

using namespace dpc;

namespace {

struct CellSpec
{
    const char *name;
    std::size_t n;
    double drop;
    std::size_t crashes;
    std::size_t rejoins;
    bool partition; ///< also cut two ring links mid-storm
    bool heal;     ///< overlay healer on (off => federation must act)
};

struct CellResult
{
    double availability = 0.0;
    double util_frac_during = 0.0;
    double util_frac_final = 0.0;
    std::size_t rounds = 0;
    std::size_t rounds_to_recover = 0;
    std::size_t repairs = 0;
    std::size_t refederations = 0;
    std::size_t escalations = 0;
    std::size_t nodes_failed = 0;
    std::size_t nodes_rejoined = 0;
    std::size_t false_positives = 0;
};

/** Quality of the current allocation against the KKT optimum of
 * the survivors' subproblem. */
double
liveUtilFrac(const DibaAllocator &diba, const AllocationProblem &prob)
{
    AllocationProblem::Builder reduced;
    std::vector<double> live;
    for (std::size_t i = 0; i < prob.size(); ++i) {
        if (diba.isActive(i)) {
            reduced.add(prob.utilities[i]);
            live.push_back(diba.power()[i]);
        }
    }
    const auto sub = reduced.budget(prob.budget).build();
    const auto opt = solveKkt(sub);
    return totalUtility(sub.utilities, live) / opt.utility;
}

CellResult
runCell(const CellSpec &spec)
{
    const double horizon = 400.0;
    const double tail = 800.0;
    const auto prob = bench::npbProblem(spec.n, 172.0, 11);

    Rng topo_rng(23);
    std::vector<std::pair<std::size_t, std::size_t>> spares;
    // Partition cells run on a bare ring (plus spares) so the two
    // planned cuts genuinely split the believed overlay; the other
    // cells carry n/4 chords like the acceptance storm.
    const std::size_t chords = spec.partition ? 0 : spec.n / 4;
    DibaAllocator diba(makeHealableRing(
        spec.n, chords, spec.n / 16, topo_rng, &spares));
    diba.reset(prob);

    FaultPlan plan = FaultPlan::randomChurn(
        spec.n, spec.crashes, spec.rejoins, horizon, 0x2ec0 + spec.n);
    if (spec.partition) {
        // Two ring cuts early in the storm: the believed overlay
        // splits unless the healer bridges it with spares.
        plan.cutLinkAt(40.0, 0, 1);
        plan.cutLinkAt(40.0, spec.n / 2, spec.n / 2 + 1);
    }
    LossyChannel::Config loss;
    loss.drop_rate = spec.drop;
    loss.burst_enter = 0.01;
    loss.burst_exit = 0.25;
    loss.burst_drop = 0.85;
    loss.delay_rate = 0.08;
    loss.max_lag = 2;
    plan.loss(loss).seed(0x2eca + static_cast<int>(spec.drop * 100));

    RecoverySession::Config cfg;
    cfg.detector.node_suspect_after = 8;
    cfg.detector.edge_suspect_after = 20;
    cfg.spare_edges = spares;
    cfg.enable_healing = spec.heal;
    RecoverySession session(diba, plan, cfg);

    CellResult cell;
    double avail_sum = 0.0;
    std::size_t avail_rounds = 0;
    bool sampled_during = false;
    while (session.now() < horizon + tail) {
        session.stepRound();
        // Serving fraction: nodes both world-up AND participating
        // in the protocol.  A crashed-but-undetected node counts
        // against neither side; an up node the detector has
        // (wrongly or belatedly) ejected counts as unavailable.
        std::size_t world_up = 0;
        std::size_t serving = 0;
        for (std::size_t i = 0; i < spec.n; ++i) {
            if (!session.world().nodeUp(i))
                continue;
            ++world_up;
            if (diba.isActive(i))
                ++serving;
        }
        avail_sum += static_cast<double>(serving) /
                     static_cast<double>(world_up);
        ++avail_rounds;
        // "During" sample: first round after the last planned
        // crash has landed and been given one detector window.
        if (!sampled_during && session.now() > 0.6 * horizon + 16) {
            cell.util_frac_during = liveUtilFrac(diba, prob);
            sampled_during = true;
        }
    }

    const RecoveryReport &rep = session.report();
    cell.availability = avail_sum / static_cast<double>(avail_rounds);
    cell.util_frac_final = liveUtilFrac(diba, prob);
    cell.rounds = rep.rounds;
    cell.rounds_to_recover = rep.rounds_to_recover;
    cell.repairs = rep.repairs;
    cell.refederations = rep.refederations;
    cell.escalations = rep.total_escalations();
    cell.nodes_failed = rep.nodes_failed;
    cell.nodes_rejoined = rep.nodes_rejoined;
    cell.false_positives =
        rep.false_positive_nodes + rep.false_positive_edges;
    return cell;
}

} // namespace

int
main()
{
    bench::banner(
        "Recovery storm",
        "detector-driven self-healing under loss, churn and "
        "partitions; every round audited, zero omniscient calls");

    const std::vector<CellSpec> specs{
        {"calm", 128, 0.05, 3, 2, false, true},
        {"lossy", 128, 0.15, 3, 2, false, true},
        {"churny", 256, 0.10, 8, 4, false, true},
        {"partition", 256, 0.10, 4, 2, true, true},
        {"federate", 256, 0.10, 4, 2, true, false},
    };

    Table table({"cell", "n", "drop_pct", "availability",
                 "util_during", "util_frac_of_opt", "recover_rounds",
                 "repairs", "refeds", "escal", "fp"});
    tools::BenchJsonWriter json;

    for (const CellSpec &spec : specs) {
        const CellResult cell = runCell(spec);
        table.addRow(
            {std::string(spec.name),
             Table::num((long long)spec.n),
             Table::num(100.0 * spec.drop, 0),
             Table::num(cell.availability, 4),
             Table::num(cell.util_frac_during, 4),
             Table::num(cell.util_frac_final, 4),
             Table::num((long long)cell.rounds_to_recover),
             Table::num((long long)cell.repairs),
             Table::num((long long)cell.refederations),
             Table::num((long long)cell.escalations),
             Table::num((long long)cell.false_positives)});
        json.record()
            .field("bench", "recovery_storm")
            .field("cell", spec.name)
            .field("n", spec.n)
            .field("drop_rate", spec.drop)
            .field("crashes", spec.crashes)
            .field("rejoins", spec.rejoins)
            .field("partition", spec.partition ? "yes" : "no")
            .field("healing", spec.heal ? "on" : "off")
            .field("availability", cell.availability)
            .field("util_frac_during", cell.util_frac_during)
            .field("util_frac_of_opt", cell.util_frac_final)
            .field("rounds", cell.rounds)
            .field("rounds_to_recover", cell.rounds_to_recover)
            .field("repairs", cell.repairs)
            .field("refederations", cell.refederations)
            .field("escalations", cell.escalations)
            .field("nodes_failed", cell.nodes_failed)
            .field("nodes_rejoined", cell.nodes_rejoined)
            .field("false_positives", cell.false_positives);
    }
    table.print(std::cout);
    json.save("BENCH_recovery.json");

    std::cout << "\nEvery cell ran the full self-healing pipeline "
                 "(detect -> heal -> re-federate -> watchdog) with "
                 "the per-round invariant audit on; results saved "
                 "to BENCH_recovery.json\n";
    return 0;
}
