/**
 * @file
 * google-benchmark microbenchmarks of the core algorithms: the
 * KKT oracle, one DiBA round, a full DiBA solve, the primal-dual
 * solve, and the knapsack DP -- the computational costs behind
 * Table 4.2 and the Ch.3 budgeter.
 */

#include <benchmark/benchmark.h>

#include "alloc/diba.hh"
#include "alloc/kkt.hh"
#include "alloc/knapsack.hh"
#include "alloc/primal_dual.hh"
#include "bench/common.hh"

using namespace dpc;

namespace {

void
BM_KktSolve(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto &prob = bench::cachedNpbProblem(n, 172.0, 1);
    state.SetLabel(bench::problemLabel(n, 172.0, 1));
    for (auto _ : state) {
        auto res = solveKkt(prob);
        benchmark::DoNotOptimize(res.utility);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_DibaRound(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto &prob = bench::cachedNpbProblem(n, 172.0, 2);
    state.SetLabel(bench::problemLabel(n, 172.0, 2));
    DibaAllocator diba(makeRing(n));
    diba.reset(prob);
    for (auto _ : state) {
        benchmark::DoNotOptimize(diba.iterate());
    }
    state.SetComplexityN(state.range(0));
}

void
BM_DibaSolve(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto &prob = bench::cachedNpbProblem(n, 172.0, 3);
    state.SetLabel(bench::problemLabel(n, 172.0, 3));
    for (auto _ : state) {
        DibaAllocator diba(makeRing(n));
        auto res = diba.allocate(prob);
        benchmark::DoNotOptimize(res.utility);
    }
}

void
BM_PrimalDualSolve(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto &prob = bench::cachedNpbProblem(n, 172.0, 4);
    state.SetLabel(bench::problemLabel(n, 172.0, 4));
    for (auto _ : state) {
        PrimalDualAllocator pd;
        auto res = pd.allocate(prob);
        benchmark::DoNotOptimize(res.utility);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_KnapsackDp(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(5);
    const auto cluster = drawSpecMixAssignment(
        n, MixKind::HomogeneousWithinServer, rng);
    CapGrid grid;
    KnapsackBudgeter budgeter(grid);
    std::vector<std::vector<double>> values(n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < grid.levels; ++j)
            values[i].push_back(
                cluster[i].utility->value(grid.capAt(j)));
    const double budget = 147.0 * static_cast<double>(n);
    for (auto _ : state) {
        auto res = budgeter.allocate(values, budget);
        benchmark::DoNotOptimize(res.log_value);
    }
    state.SetComplexityN(state.range(0));
}

} // namespace

BENCHMARK(BM_KktSolve)->Arg(100)->Arg(400)->Arg(1600)->Complexity();
BENCHMARK(BM_DibaRound)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Complexity();
BENCHMARK(BM_DibaSolve)->Arg(100)->Arg(400);
BENCHMARK(BM_PrimalDualSolve)->Arg(100)->Arg(400)->Arg(1600)
    ->Complexity();
BENCHMARK(BM_KnapsackDp)->Arg(100)->Arg(400)->Arg(800)
    ->Complexity();

BENCHMARK_MAIN();
