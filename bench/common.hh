/**
 * @file
 * Shared helpers for the reproduction benches: problem builders,
 * convergence counting against the KKT oracle, and banner output.
 */

#ifndef DPC_BENCH_COMMON_HH
#define DPC_BENCH_COMMON_HH

#include <algorithm>
#include <chrono>
#include <limits>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <tuple>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "alloc/diba.hh"
#include "alloc/kkt.hh"
#include "alloc/primal_dual.hh"
#include "alloc/problem.hh"
#include "alloc/uniform.hh"
#include "graph/topologies.hh"
#include "metrics/performance.hh"
#include "tools/bench_json.hh"
#include "util/table.hh"
#include "workload/generator.hh"

namespace dpc {
namespace bench {

/** Print a figure/table banner. */
inline void
banner(const std::string &title, const std::string &what)
{
    std::cout << "\n=== " << title << " ===\n" << what << "\n\n";
}

/** Random NPB cluster problem at `wpn` Watts per node. */
inline AllocationProblem
npbProblem(std::size_t n, double wpn, std::uint64_t seed)
{
    return AllocationProblem::Builder()
        .npbCluster(n, seed)
        .budgetPerNode(wpn)
        .build();
}

/**
 * Cached variant of npbProblem for google-benchmark bodies: the
 * harness re-enters a benchmark function many times while tuning
 * the iteration count, and regenerating thousands of utilities in
 * every entry pollutes the untimed setup (and the CPU caches) the
 * timed region then runs under.  The cache key doubles as the
 * seed label, keeping micro benches comparable across runs.
 */
inline const AllocationProblem &
cachedNpbProblem(std::size_t n, double wpn, std::uint64_t seed)
{
    using Key = std::tuple<std::size_t, double, std::uint64_t>;
    static std::map<Key, AllocationProblem> cache;
    const Key key{n, wpn, seed};
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, npbProblem(n, wpn, seed)).first;
    return it->second;
}

/** Uniform problem label for benchmark counters/reports, so runs
 * with different generator seeds are never compared by accident. */
inline std::string
problemLabel(std::size_t n, double wpn, std::uint64_t seed)
{
    return "npb n=" + std::to_string(n) +
           " wpn=" + std::to_string(static_cast<long long>(wpn)) +
           " seed=" + std::to_string(seed);
}

/**
 * Run DiBA until it reaches `fraction` of the oracle utility;
 * returns the iteration count (or max_iters if never reached).
 */
inline std::size_t
dibaIterationsToFraction(DibaAllocator &diba,
                         const AllocationProblem &prob,
                         double optimal_utility, double fraction,
                         std::size_t max_iters = 60000)
{
    diba.reset(prob);
    for (std::size_t it = 1; it <= max_iters; ++it) {
        diba.iterate();
        const double u =
            totalUtility(prob.utilities, diba.power());
        if (withinFractionOfOptimal(u, optimal_utility, fraction))
            return it;
    }
    return max_iters;
}

/** Iterations for the primal-dual scheme to reach the fraction. */
inline std::size_t
pdIterationsToFraction(const AllocationProblem &prob,
                       double optimal_utility, double fraction)
{
    PrimalDualAllocator pd;
    pd.allocate(prob);
    const auto &trace = pd.utilityTrace();
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (withinFractionOfOptimal(trace[i], optimal_utility,
                                    fraction))
            return i + 1;
    }
    return trace.size();
}

/**
 * Wall-clock timing of a batch of synchronized rounds, in the two
 * normalizations every perf record uses: ms per round and ns per
 * node-round (the flat-with-N quantity Table 4.2 tracks).
 */
struct RoundTiming
{
    double ms_per_round = 0.0;
    double ns_per_node = 0.0;
    std::size_t rounds = 0;
};

/**
 * Time `rounds` calls of `step` over an n-node engine, best of
 * `trials` batches.  The minimum is the right estimator for a
 * deterministic hot loop: every source of error (scheduler
 * preemption, frequency dips, cache pollution from neighbors) only
 * ever adds time, so the fastest batch is the closest observation
 * of the true cost — and it is what keeps run-to-run jitter inside
 * the regression gate's threshold (tools/bench_compare.py).
 */
template <typename Step>
inline RoundTiming
timeRounds(std::size_t n, std::size_t rounds, Step &&step,
           std::size_t trials = 9)
{
    double best_ms = std::numeric_limits<double>::infinity();
    for (std::size_t trial = 0; trial < trials; ++trial) {
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t r = 0; r < rounds; ++r)
            step();
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count() /
            static_cast<double>(rounds);
        best_ms = std::min(best_ms, ms);
    }
    RoundTiming t;
    t.ms_per_round = best_ms;
    t.ns_per_node = 1e6 * best_ms / static_cast<double>(n);
    t.rounds = rounds * trials;
    return t;
}

/** Peak resident set of this process in MiB (0 if unavailable). */
inline double
peakRssMb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
        return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
        return static_cast<double>(ru.ru_maxrss) / 1024.0;
#endif
    }
#endif
    return 0.0;
}

/** Standard perf fields every timing record carries, so the JSON
 * trajectories stay comparable across benches and sessions. */
inline tools::JsonRecord &
addTimingFields(tools::JsonRecord &rec, const RoundTiming &t)
{
    return rec.field("rounds", t.rounds)
        .field("ms_per_round", t.ms_per_round)
        .field("ns_per_node", t.ns_per_node)
        .field("peak_rss_mb", peakRssMb());
}

/** SNP of an allocation under the problem's utilities. */
inline double
snpOf(const AllocationProblem &prob, const std::vector<double> &p)
{
    return snpArithmetic(anpVector(prob.utilities, p));
}

} // namespace bench
} // namespace dpc

#endif // DPC_BENCH_COMMON_HH
