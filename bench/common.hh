/**
 * @file
 * Shared helpers for the reproduction benches: problem builders,
 * convergence counting against the KKT oracle, and banner output.
 */

#ifndef DPC_BENCH_COMMON_HH
#define DPC_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <tuple>

#include "alloc/diba.hh"
#include "alloc/kkt.hh"
#include "alloc/primal_dual.hh"
#include "alloc/problem.hh"
#include "alloc/uniform.hh"
#include "graph/topologies.hh"
#include "metrics/performance.hh"
#include "util/table.hh"
#include "workload/generator.hh"

namespace dpc {
namespace bench {

/** Print a figure/table banner. */
inline void
banner(const std::string &title, const std::string &what)
{
    std::cout << "\n=== " << title << " ===\n" << what << "\n\n";
}

/** Random NPB cluster problem at `wpn` Watts per node. */
inline AllocationProblem
npbProblem(std::size_t n, double wpn, std::uint64_t seed)
{
    return AllocationProblem::Builder()
        .npbCluster(n, seed)
        .budgetPerNode(wpn)
        .build();
}

/**
 * Cached variant of npbProblem for google-benchmark bodies: the
 * harness re-enters a benchmark function many times while tuning
 * the iteration count, and regenerating thousands of utilities in
 * every entry pollutes the untimed setup (and the CPU caches) the
 * timed region then runs under.  The cache key doubles as the
 * seed label, keeping micro benches comparable across runs.
 */
inline const AllocationProblem &
cachedNpbProblem(std::size_t n, double wpn, std::uint64_t seed)
{
    using Key = std::tuple<std::size_t, double, std::uint64_t>;
    static std::map<Key, AllocationProblem> cache;
    const Key key{n, wpn, seed};
    auto it = cache.find(key);
    if (it == cache.end())
        it = cache.emplace(key, npbProblem(n, wpn, seed)).first;
    return it->second;
}

/** Uniform problem label for benchmark counters/reports, so runs
 * with different generator seeds are never compared by accident. */
inline std::string
problemLabel(std::size_t n, double wpn, std::uint64_t seed)
{
    return "npb n=" + std::to_string(n) +
           " wpn=" + std::to_string(static_cast<long long>(wpn)) +
           " seed=" + std::to_string(seed);
}

/**
 * Run DiBA until it reaches `fraction` of the oracle utility;
 * returns the iteration count (or max_iters if never reached).
 */
inline std::size_t
dibaIterationsToFraction(DibaAllocator &diba,
                         const AllocationProblem &prob,
                         double optimal_utility, double fraction,
                         std::size_t max_iters = 60000)
{
    diba.reset(prob);
    for (std::size_t it = 1; it <= max_iters; ++it) {
        diba.iterate();
        const double u =
            totalUtility(prob.utilities, diba.power());
        if (withinFractionOfOptimal(u, optimal_utility, fraction))
            return it;
    }
    return max_iters;
}

/** Iterations for the primal-dual scheme to reach the fraction. */
inline std::size_t
pdIterationsToFraction(const AllocationProblem &prob,
                       double optimal_utility, double fraction)
{
    PrimalDualAllocator pd;
    pd.allocate(prob);
    const auto &trace = pd.utilityTrace();
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (withinFractionOfOptimal(trace[i], optimal_utility,
                                    fraction))
            return i + 1;
    }
    return trace.size();
}

/** SNP of an allocation under the problem's utilities. */
inline double
snpOf(const AllocationProblem &prob, const std::vector<double> &p)
{
    return snpArithmetic(anpVector(prob.utilities, p));
}

} // namespace bench
} // namespace dpc

#endif // DPC_BENCH_COMMON_HH
