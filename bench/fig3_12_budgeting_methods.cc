/**
 * @file
 * Fig. 3.12 reproduction: SNP (geometric), slowdown norm and
 * unfairness of four computing-power budgeting methods --
 * uniform, previous-greedy [58/64], the proposed
 * predictor+knapsack, and the oracle+knapsack upper bound --
 * across computing budgets, for both workload cases:
 *   (a) heterogeneous across servers, homogeneous within;
 *   (b) heterogeneous across servers, heterogeneous within.
 */

#include <iostream>

#include "alloc/knapsack.hh"
#include "metrics/performance.hh"
#include "model/predictors.hh"
#include "util/table.hh"
#include "workload/generator.hh"

using namespace dpc;

namespace {

void
runCase(const char *title, MixKind kind, std::uint64_t seed)
{
    const std::size_t n = 1600;
    Rng rng(seed);
    const auto cluster = drawSpecMixAssignment(n, kind, rng);
    const auto us = utilitiesOf(cluster);

    CapGrid grid;
    KnapsackBudgeter budgeter(grid);

    // Oracle values and predictor-estimated values per cap.
    auto predictor = makeQuadraticLlcTpPredictor();
    Rng train_rng(seed + 1);
    predictor->train(makeCharacterizationSet(300, train_rng));

    std::vector<std::vector<double>> oracle_vals(n);
    std::vector<std::vector<double>> pred_vals(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double peak = us[i]->peakValue();
        ServerObservation obs{145.0, us[i]->value(145.0),
                              cluster[i].llc};
        const auto curve = predictor->predict(obs);
        for (std::size_t j = 0; j < grid.levels; ++j) {
            const double cap = grid.capAt(j);
            oracle_vals[i].push_back(us[i]->value(cap) / peak);
            pred_vals[i].push_back(
                std::max(curve(cap) / peak, 1e-6));
        }
    }

    std::cout << "\n--- " << title << " ---\n";
    Table table({"B_s_W/srv", "method", "SNP_geo", "slowdown",
                 "unfairness"});
    for (double wpn : {136.0, 142.0, 148.0, 154.0, 160.0}) {
        const double budget = wpn * static_cast<double>(n);

        // Uniform: the highest common cap not exceeding the share.
        double share_cap = grid.capAt(0);
        for (std::size_t j = 0; j < grid.levels; ++j)
            if (grid.capAt(j) <= wpn)
                share_cap = grid.capAt(j);
        const std::vector<double> uniform_caps(n, share_cap);

        // Previous-greedy: grant increments by throughput/Watt.
        std::vector<double> greedy_caps(n, grid.capAt(0));
        {
            double remaining =
                budget - grid.p0 * static_cast<double>(n);
            bool progress = true;
            while (remaining >= grid.increment && progress) {
                progress = false;
                double best_key = -1.0;
                std::size_t best_i = n;
                for (std::size_t i = 0; i < n; ++i) {
                    if (greedy_caps[i] + grid.increment >
                        grid.maxCap() + 1e-9)
                        continue;
                    const double key =
                        us[i]->value(greedy_caps[i]) /
                        greedy_caps[i];
                    if (key > best_key) {
                        best_key = key;
                        best_i = i;
                    }
                }
                if (best_i < n) {
                    greedy_caps[best_i] += grid.increment;
                    remaining -= grid.increment;
                    progress = true;
                }
            }
        }

        const auto knap_pred = budgeter.allocate(pred_vals, budget);
        const auto knap_oracle =
            budgeter.allocate(oracle_vals, budget);

        struct Row
        {
            const char *method;
            const std::vector<double> *caps;
        };
        const Row rows[] = {
            {"uniform", &uniform_caps},
            {"previous-greedy", &greedy_caps},
            {"predictor+knapsack", &knap_pred.power},
            {"oracle+knapsack", &knap_oracle.power},
        };
        for (const auto &r : rows) {
            const auto rep = evaluateAllocation(us, *r.caps);
            table.addRow({Table::num(wpn, 0), r.method,
                          Table::num(rep.snp_geo, 4),
                          Table::num(rep.slowdown, 4),
                          Table::num(rep.unfair, 4)});
        }
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    std::cout << "\n=== Figure 3.12 ===\n"
              << "Four budgeting methods x three metrics x five "
                 "budgets, N=1600 servers\n";

    runCase("(a-c) heterogeneous across, homogeneous within",
            MixKind::HomogeneousWithinServer, 59);
    runCase("(d-f) heterogeneous across, heterogeneous within",
            MixKind::HeterogeneousWithinServer, 67);

    std::cout
        << "\nPaper shape: predictor+knapsack tracks oracle+"
           "knapsack closely and beats uniform and previous-greedy "
           "on every metric, with the biggest wins (especially in "
           "unfairness) at tight budgets; greedy is worst on "
           "unfairness at low budgets.\n";
    return 0;
}
