/**
 * @file
 * Sharded multi-process DiBA over the wire protocol: cut-edge
 * traffic and round rate of real forked shard processes exchanging
 * WireCodec frames over 127.0.0.1 sockets, against the
 * single-process transport round as the reference.
 *
 * Grid: chordal rings at n in {6400, 25600}; one single-process
 * row per size, then sharded rows at 2 shards (UDP and TCP) and 4
 * shards (UDP).  Every zero-loss sharded run doubles as a parity
 * bar: the reassembled owned caps/estimates must be BITWISE equal
 * to the single-process run, or the bench exits non-zero -- the
 * gate that makes the perf numbers trustworthy (a wire protocol
 * that drifts from the reference is wrong before it is slow).
 *
 * Sharded rounds_per_sec is computed from the SLOWEST shard's
 * round-loop wall time (reported in its Result frame), not from
 * the whole runShardedDiba() call: fork + broker handshake +
 * result collection cost ~tens of ms once per run, which a real
 * deployment amortizes over its lifetime but which would otherwise
 * drown the per-round signal at bench round counts.
 *
 * Emitted to BENCH_wire.json per row: bytes_per_round,
 * frames_per_round and header_overhead_frac of cut-edge traffic
 * (deterministic in topology + plan: any growth means the batch
 * coalescing regressed or the cut got worse), rounds_per_sec (the
 * timing; gated at the perf threshold), cut_edges / cut_frac (plan
 * quality under the layout permutation), retransmits / duplicates
 * (loopback UDP under zero loss should never need either),
 * edges_suppressed (bitmap-shipped quiesced halves) and the
 * per-phase round breakdown (send / interior compute / drain /
 * boundary compute, ms per round summed over shards).  Sharded
 * rows run with compute/communication overlap on; smoke adds an
 * overlap-off twin per proto and the full grid keeps one, all
 * gated bitwise against the same reference.
 *
 * On a single-core host the sharded rows are expected to run
 * SLOWER than single-process (the processes time-share one core
 * and add syscalls); the interesting trend is the cut traffic
 * scaling and the protocol overhead per round, which is why
 * rounds_per_sec is compared per-row against its own baseline and
 * never across modes.
 *
 * Steady-state section (active_threshold = 4x tolerance, 2-shard
 * UDP): converge until the frontier drains, hold H fully-quiesced
 * rounds, then apply a +20% budget step and reconverge.  Two
 * sharded runs that differ only in the hold length isolate the
 * quiesced marginals by subtraction -- steady_bytes_per_round is
 * exact (wire traffic is deterministic), steady_rounds_per_sec
 * rides on a hold long enough to dominate the wall-clock delta.
 * step_rounds_to_reconverge comes from the single-process
 * reference the sharded runs are bitwise-pinned to.  Every steady
 * row asserts the quiesced byte ceiling: one suppressed seq-0
 * frame per directed shard pair per round, reports included.
 *
 * DPC_BENCH_SMOKE=1 shrinks to one small size, few rounds, 2
 * shards x {UDP, TCP} -- the ci.sh loopback-vs-socket parity
 * smoke (threshold-0 rows bitwise vs the dense reference, steady
 * rows under the quiesced byte ceiling).
 */

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "bench/common.hh"
#include "cluster/shard.hh"
#include "net/socket_transport.hh"
#include "net/transport.hh"
#include "tools/bench_json.hh"

using namespace dpc;

namespace {

constexpr double kWattsPerNode = 172.0;
constexpr std::uint64_t kProblemSeed = 97;
constexpr std::uint64_t kTopoSeed = 7;

Graph
topologyOf(std::size_t n)
{
    Rng rng(kTopoSeed);
    return makeChordalRing(n, n / 4, rng);
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Bitwise vector comparison; returns the mismatch count. */
std::size_t
mismatches(const std::vector<double> &a,
           const std::vector<double> &b)
{
    if (a.size() != b.size())
        return a.size() + b.size();
    std::size_t bad = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        bad += std::memcmp(&a[i], &b[i], sizeof(double)) != 0;
    return bad;
}

const char *
protoName(net::SocketTransport::Proto proto)
{
    return proto == net::SocketTransport::Proto::Udp ? "udp"
                                                     : "tcp";
}

/**
 * Converge -> hold -> +20% step -> reconverge over the wire, at
 * active_threshold = 4x tolerance (a threshold the frontier
 * provably drains under; sub-tolerance thresholds oscillate
 * forever and never quiesce).  Returns the number of bitwise
 * parity mismatches (0 on success) and appends one "steady" row
 * per size to the table and the JSON writer.
 */
std::size_t
runSteadySection(const std::vector<std::size_t> &sizes, bool smoke,
                 Table &table, tools::BenchJsonWriter &writer)
{
    // Hold long enough that the quiesced rounds dominate the
    // wall-clock difference between the two runs; bytes are exact
    // regardless.
    const std::size_t hold = smoke ? 4000 : 20000;
    const std::size_t step_margin = 50;
    const std::size_t drain_cap = 8000;
    constexpr std::uint32_t kShards = 2;
    std::size_t failures = 0;

    for (const std::size_t n : sizes) {
        const auto prob =
            bench::npbProblem(n, kWattsPerNode, kProblemSeed);
        const auto topo = topologyOf(n);
        DibaAllocator::Config cfg;
        cfg.active_threshold = 4.0 * cfg.tolerance;
        const double delta = 0.2 * prob.budget;

        // Single-process reference: find the drain round, then
        // step and count the reconvergence tail.  The sharded runs
        // below are bitwise-pinned to this trajectory, so the
        // drain round and step response transfer exactly.
        DibaAllocator ref(topo, cfg);
        ref.reset(prob);
        std::size_t converge_rounds = 0;
        for (std::size_t r = 1; r <= drain_cap; ++r) {
            ref.iterate();
            if (ref.frontierHotCount() == 0) {
                converge_rounds = r;
                break;
            }
        }
        if (converge_rounds == 0) {
            std::cerr << "wire_shard: steady section at n=" << n
                      << ": frontier failed to drain within "
                      << drain_cap << " rounds\n";
            ++failures;
            continue;
        }
        // A fully-quiesced allocator is bitwise frozen: held
        // rounds move nothing, so this snapshot is the parity
        // target for BOTH the converge run and the hold run.
        const std::vector<double> steady_p = ref.power();
        const std::vector<double> steady_e = ref.estimates();

        ref.warmStart(ref.result(), delta);
        std::size_t step_reconverge = 0;
        for (std::size_t r = 1; r <= drain_cap; ++r) {
            ref.iterate();
            if (ref.frontierHotCount() == 0) {
                step_reconverge = r;
                break;
            }
        }
        for (std::size_t r = step_reconverge; r < step_margin; ++r)
            ref.iterate();

        // Three sharded runs: converge only, converge + hold, and
        // converge + step + margin (the held steady state is
        // frozen, so stepping right at the drain round is the
        // identical scenario with the hold factored out).
        cluster::ShardRunOptions opt;
        opt.num_shards = kShards;
        opt.rounds = converge_rounds;
        const auto runA =
            cluster::runShardedDiba(prob, topo, cfg, opt);

        opt.rounds = converge_rounds + hold;
        const auto runB =
            cluster::runShardedDiba(prob, topo, cfg, opt);

        opt.rounds = converge_rounds + step_margin;
        opt.budget_steps.push_back({converge_rounds, delta});
        const auto runC =
            cluster::runShardedDiba(prob, topo, cfg, opt);

        std::size_t bad = 0;
        if (!runA.ok || !runB.ok || !runC.ok) {
            std::cerr << "wire_shard: steady sharded run failed: "
                      << runA.error << runB.error << runC.error
                      << "\n";
            ++failures;
            continue;
        }
        bad += mismatches(steady_p, runA.power) +
               mismatches(steady_e, runA.estimates);
        bad += mismatches(steady_p, runB.power) +
               mismatches(steady_e, runB.estimates);
        bad += mismatches(ref.power(), runC.power) +
               mismatches(ref.estimates(), runC.estimates);
        failures += bad;

        const double steady_bytes =
            static_cast<double>(runB.wire_bytes -
                                runA.wire_bytes) /
            static_cast<double>(hold);
        const double steady_frames =
            static_cast<double>(runB.wire_frames -
                                runA.wire_frames) /
            static_cast<double>(hold);
        const double hold_s =
            runB.round_loop_s - runA.round_loop_s;
        const double steady_rps =
            hold_s > 0.0 ? static_cast<double>(hold) / hold_s
                         : 0.0;

        // Quiesced byte ceiling: one suppressed seq-0 frame per
        // directed shard pair per round -- fixed part, two zero
        // varints, and a full report piggyback.  The subtraction
        // window's edges can each catch a few stray bytes (a wake
        // word or late report straddling the cut), hence the
        // per-window allowance amortized over the hold.
        const double ceiling =
            static_cast<double>(kShards * (kShards - 1)) *
                static_cast<double>(
                    net::kCutBatchV4Fixed + 2 +
                    24 * net::SocketTransport::kMaxDpReports) +
            256.0 / static_cast<double>(hold);
        if (steady_bytes > ceiling) {
            std::cerr << "wire_shard: steady bytes/round "
                      << steady_bytes
                      << " exceeds the quiesced ceiling "
                      << ceiling << " at n=" << n << "\n";
            ++failures;
        }

        table.addRow({Table::num(n, 0), "steady", "udp",
                      Table::num(kShards, 0), "on",
                      Table::num(runB.plan.cut_edges, 0),
                      Table::num(steady_frames, 1),
                      Table::num(steady_bytes, 0),
                      Table::num(steady_rps, 1),
                      Table::num(runB.retransmits, 0),
                      bad == 0 ? "OK" : "FAIL"});
        writer.record()
            .field("bench", "wire_shard")
            .field("mode", "steady")
            .field("proto", "udp")
            .field("n", static_cast<long long>(n))
            .field("shards", static_cast<long long>(kShards))
            .field("rounds",
                   static_cast<long long>(converge_rounds + hold))
            .field("converge_rounds",
                   static_cast<long long>(converge_rounds))
            .field("hold_rounds", static_cast<long long>(hold))
            .field("steady_bytes_per_round", steady_bytes)
            .field("steady_frames_per_round", steady_frames)
            .field("steady_rounds_per_sec", steady_rps)
            .field("step_rounds_to_reconverge",
                   static_cast<long long>(step_reconverge))
            .field("suppressed_frames",
                   static_cast<long long>(runB.suppressed_frames))
            .field("delta_frames",
                   static_cast<long long>(runB.delta_frames))
            .field("wake_messages",
                   static_cast<long long>(runB.wake_messages))
            .field("cut_edges",
                   static_cast<long long>(runB.plan.cut_edges))
            .field("retransmits",
                   static_cast<long long>(runB.retransmits));
    }
    return failures;
}

} // namespace

int
main()
{
    const bool smoke = std::getenv("DPC_BENCH_SMOKE") != nullptr;
    const std::vector<std::size_t> sizes =
        smoke ? std::vector<std::size_t>{512}
              : std::vector<std::size_t>{6400, 25600};
    const std::size_t rounds = smoke ? 40 : 300;

    bench::banner("wire_shard",
                  "multi-process sharded DiBA over 127.0.0.1: "
                  "cut-edge wire traffic + round rate vs the "
                  "single-process transport round (bitwise parity "
                  "enforced)");

    struct ShardConfig
    {
        std::uint32_t shards;
        net::SocketTransport::Proto proto;
        bool overlap;
    };
    // Every proto gets an overlap-off twin in smoke (the ci.sh
    // overlap-parity gate: on and off must both match the
    // single-process reference bitwise, hence each other); the
    // full grid keeps one overlap-off row as the serialized
    // comparison point.
    std::vector<ShardConfig> grid{
        {2, net::SocketTransport::Proto::Udp, true},
        {2, net::SocketTransport::Proto::Udp, false},
        {2, net::SocketTransport::Proto::Tcp, true},
    };
    if (smoke)
        grid.push_back({2, net::SocketTransport::Proto::Tcp, false});
    if (!smoke)
        grid.push_back({4, net::SocketTransport::Proto::Udp, true});

    tools::BenchJsonWriter writer;
    Table table({"n", "mode", "proto", "shards", "ovl",
                 "cut_edges", "fr_per_round", "B_per_round",
                 "rounds_per_s", "retrans", "parity"});
    std::size_t parity_failures = 0;

    for (const std::size_t n : sizes) {
        const auto prob =
            bench::npbProblem(n, kWattsPerNode, kProblemSeed);
        const auto topo = topologyOf(n);
        const DibaAllocator::Config cfg{};

        // Single-process reference (identity loopback, pinned
        // bitwise to the historical round path).
        DibaAllocator ref(topo, cfg);
        ref.reset(prob);
        net::LoopbackTransport loopback;
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t r = 0; r < rounds; ++r)
            ref.stepWithTransport(loopback);
        const double single_s = secondsSince(t0);
        const double single_rps =
            static_cast<double>(rounds) / single_s;

        table.addRow({Table::num(n, 0), "single", "-", "1", "-",
                      "0", "0", "0", Table::num(single_rps, 1),
                      "0", "-"});
        writer.record()
            .field("bench", "wire_shard")
            .field("mode", "single")
            .field("proto", "none")
            .field("n", static_cast<long long>(n))
            .field("shards", static_cast<long long>(1))
            .field("rounds", static_cast<long long>(rounds))
            .field("rounds_per_sec", single_rps)
            .field("bytes_per_round", 0.0)
            .field("frames_per_round", 0.0)
            .field("cut_edges", static_cast<long long>(0))
            .field("cut_frac", 0.0)
            .field("retransmits", static_cast<long long>(0));

        for (const auto &sc : grid) {
            cluster::ShardRunOptions opt;
            opt.num_shards = sc.shards;
            opt.rounds = rounds;
            opt.proto = sc.proto;
            opt.overlap = sc.overlap;

            const auto run =
                cluster::runShardedDiba(prob, topo, cfg, opt);
            // Rate on the SLOWEST shard's round-loop wall time:
            // the cluster's steady-state rounds/sec.  Fork, broker
            // handshake and result collection are one-time costs a
            // deployment amortizes, so folding them in would just
            // scale the row with 1/rounds instead of the protocol.
            const double shard_rps =
                run.round_loop_s > 0.0
                    ? static_cast<double>(rounds) /
                          run.round_loop_s
                    : 0.0;

            // Zero loss: the sharded trajectory must be BITWISE
            // the single-process one on every node -- which also
            // pins the overlap-on and overlap-off rows to each
            // other.
            const std::size_t bad =
                mismatches(ref.power(), run.power) +
                mismatches(ref.estimates(), run.estimates);
            parity_failures += bad;

            const double bytes_per_round =
                static_cast<double>(run.wire_bytes) /
                static_cast<double>(rounds);
            const double frames_per_round =
                static_cast<double>(run.wire_frames) /
                static_cast<double>(rounds);
            // Frame-header bytes as a fraction of first-transmit
            // wire bytes (batch efficiency: v1's per-half frames
            // sat at 12/60 = 0.2).
            const double header_frac =
                run.wire_bytes == 0
                    ? 0.0
                    : static_cast<double>(run.wire_frames) * 12.0 /
                          static_cast<double>(run.wire_bytes);
            const double per_round_ms =
                1000.0 / static_cast<double>(rounds);

            table.addRow(
                {Table::num(n, 0), "sharded", protoName(sc.proto),
                 Table::num(sc.shards, 0),
                 sc.overlap ? "on" : "off",
                 Table::num(run.plan.cut_edges, 0),
                 Table::num(frames_per_round, 1),
                 Table::num(bytes_per_round, 0),
                 Table::num(shard_rps, 1),
                 Table::num(run.retransmits, 0),
                 bad == 0 ? "OK" : "FAIL"});
            writer.record()
                .field("bench", "wire_shard")
                .field("mode", "sharded")
                .field("proto", protoName(sc.proto))
                .field("overlap", sc.overlap ? "on" : "off")
                .field("n", static_cast<long long>(n))
                .field("shards",
                       static_cast<long long>(sc.shards))
                .field("rounds", static_cast<long long>(rounds))
                .field("rounds_per_sec", shard_rps)
                .field("bytes_per_round", bytes_per_round)
                .field("frames_per_round", frames_per_round)
                .field("header_overhead_frac", header_frac)
                .field("cut_edges",
                       static_cast<long long>(run.plan.cut_edges))
                .field("cut_frac", run.plan.cutFraction())
                .field("retransmits",
                       static_cast<long long>(run.retransmits))
                .field("retrans_bytes",
                       static_cast<long long>(run.retrans_bytes))
                .field("duplicates",
                       static_cast<long long>(run.duplicates))
                .field("edges_suppressed",
                       static_cast<long long>(
                           run.edges_suppressed))
                // Per-round phase breakdown, summed over shards
                // (boundary compute rides inside interior when
                // overlap is off).
                .field("phase_send_ms",
                       run.phase_send_s * per_round_ms)
                .field("phase_interior_ms",
                       run.phase_interior_s * per_round_ms)
                .field("phase_drain_ms",
                       run.phase_drain_s * per_round_ms)
                .field("phase_boundary_ms",
                       run.phase_boundary_s * per_round_ms);
        }
    }

    parity_failures +=
        runSteadySection(sizes, smoke, table, writer);

    table.print(std::cout);
    writer.save("BENCH_wire.json");

    if (parity_failures != 0) {
        std::cerr << "wire_shard: " << parity_failures
                  << " bitwise parity mismatch(es) between "
                     "sharded and single-process runs\n";
        return 1;
    }
    std::cout << "\nwire_shard: every sharded run bitwise-matched "
                 "the single-process reference\n";
    return 0;
}
