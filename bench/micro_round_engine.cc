/**
 * @file
 * Round-engine microbenchmarks: one synchronized DiBA round
 * (diffuse + local steps) under the three engine configurations
 * the scalability work introduced --
 *
 *   seed:      generic virtual-dispatch utility path, serial loop
 *              over std::vector<std::vector> adjacency semantics
 *              (enable_quad_fastpath = false, num_threads = 0);
 *   soa:       devirtualized quadratic struct-of-arrays fast path
 *              over the CSR overlay, still serial;
 *   parallel:  soa + the static-chunked ThreadPool with one chunk
 *              per hardware thread.
 *
 * plus steady-state rounds (dense vs. active-set frontier), the
 * batched replica engine, and the primal-dual best-response sweep
 * reusing the same pool.
 * The serial/parallel DiBA rounds are bitwise-identical by
 * construction (see DESIGN.md "Round engine"), so these measure
 * the same computation.  Problems come from the shared cache so
 * harness re-entries never regenerate utilities inside setup.
 */

#include <benchmark/benchmark.h>

#include "alloc/diba.hh"
#include "alloc/primal_dual.hh"
#include "alloc/replica_batch.hh"
#include "bench/common.hh"
#include "util/thread_pool.hh"

using namespace dpc;

namespace {

constexpr double kWattsPerNode = 172.0;
constexpr std::uint64_t kSeed = 23;

DibaAllocator::Config
engineConfig(bool soa, std::size_t threads)
{
    DibaAllocator::Config cfg;
    cfg.enable_quad_fastpath = soa;
    cfg.num_threads = threads;
    return cfg;
}

void
roundBench(benchmark::State &state, bool soa, std::size_t threads)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto &prob = bench::cachedNpbProblem(n, kWattsPerNode,
                                               kSeed);
    DibaAllocator diba(makeRing(n), engineConfig(soa, threads));
    diba.reset(prob);
    for (auto _ : state)
        benchmark::DoNotOptimize(diba.iterate());
    state.SetLabel(bench::problemLabel(n, kWattsPerNode, kSeed));
    state.counters["node_ns"] = benchmark::Counter(
        static_cast<double>(n),
        benchmark::Counter::kIsIterationInvariantRate |
            benchmark::Counter::kInvert);
    state.SetComplexityN(state.range(0));
}

void
BM_RoundSeedStyle(benchmark::State &state)
{
    roundBench(state, /*soa=*/false, /*threads=*/0);
}

void
BM_RoundSoa(benchmark::State &state)
{
    roundBench(state, /*soa=*/true, /*threads=*/0);
}

void
BM_RoundSoaParallel(benchmark::State &state)
{
    roundBench(state, /*soa=*/true, ThreadPool::hardwareChunks());
}

/**
 * Steady-state round cost: the engine first converges, then the
 * timed region measures the per-round cost of holding the
 * converged allocation.  This is where the active-set engine earns
 * its keep -- the control loop spends most of its life converged,
 * re-running rounds only to track small drifts, and the dense
 * engine pays the full O(N + E) sweep for every one of them while
 * the sparse engine touches only the (empty or tiny) frontier.
 */
void
steadyBench(benchmark::State &state, double active_threshold)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto &prob = bench::cachedNpbProblem(n, kWattsPerNode,
                                               kSeed);
    DibaAllocator::Config cfg;
    cfg.active_threshold = active_threshold;
    DibaAllocator diba(makeRing(n), cfg);
    Rng rng(1);
    diba.reset(prob);
    for (std::size_t r = 0; r < 200000 && !diba.converged(); ++r)
        diba.step(rng);
    // Residuals keep a long sub-tolerance tail after the stopping
    // rule fires; drain it so the timed region measures the truly
    // quiesced regime (empty frontier for the active engine).
    if (active_threshold >= 0.0) {
        for (std::size_t r = 0;
             r < 200000 && diba.frontierHotCount() > 0; ++r)
            diba.iterate();
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(diba.iterate());
    state.SetLabel(bench::problemLabel(n, kWattsPerNode, kSeed));
    state.counters["node_ns"] = benchmark::Counter(
        static_cast<double>(n),
        benchmark::Counter::kIsIterationInvariantRate |
            benchmark::Counter::kInvert);
    state.SetComplexityN(state.range(0));
}

void
BM_RoundDenseSteady(benchmark::State &state)
{
    steadyBench(state, /*active_threshold=*/-1.0);
}

void
BM_RoundActiveSteady(benchmark::State &state)
{
    // Quiesced nodes leave the frontier once their residual falls
    // under a quarter of the convergence tolerance; at steady state
    // the frontier is empty and a round costs O(1).
    DibaAllocator::Config probe;
    steadyBench(state, 0.25 * probe.tolerance);
}

/**
 * Batched replicas vs. one-at-a-time: R lockstep lanes through
 * ReplicaBatch, timed per round; node_ns is normalized per LANE
 * per node, so it is directly comparable to BM_RoundSoa (one lane
 * through the standalone engine).
 */
void
BM_ReplicaBatchRound(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto R = static_cast<std::size_t>(state.range(1));
    const auto &prob = bench::cachedNpbProblem(n, kWattsPerNode,
                                               kSeed);
    std::vector<ReplicaSpec> specs(R);
    for (std::size_t r = 0; r < R; ++r)
        specs[r].seed = r + 1;
    ReplicaBatch batch(makeRing(n), prob, specs);
    for (auto _ : state)
        benchmark::DoNotOptimize(batch.stepAll());
    state.SetLabel(bench::problemLabel(n, kWattsPerNode, kSeed));
    state.counters["lane_node_ns"] = benchmark::Counter(
        static_cast<double>(n * R),
        benchmark::Counter::kIsIterationInvariantRate |
            benchmark::Counter::kInvert);
}

void
BM_PdSolve(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto &prob = bench::cachedNpbProblem(n, kWattsPerNode,
                                               kSeed);
    PrimalDualAllocator::Config cfg;
    cfg.num_threads = static_cast<std::size_t>(state.range(1));
    PrimalDualAllocator pd(cfg);
    for (auto _ : state) {
        auto res = pd.allocate(prob);
        benchmark::DoNotOptimize(res.utility);
    }
    state.SetLabel(bench::problemLabel(n, kWattsPerNode, kSeed));
}

} // namespace

BENCHMARK(BM_RoundSeedStyle)
    ->Arg(400)
    ->Arg(1600)
    ->Arg(6400)
    ->Arg(25600)
    ->Complexity();
BENCHMARK(BM_RoundSoa)
    ->Arg(400)
    ->Arg(1600)
    ->Arg(6400)
    ->Arg(25600)
    ->Complexity();
BENCHMARK(BM_RoundSoaParallel)
    ->Arg(400)
    ->Arg(1600)
    ->Arg(6400)
    ->Arg(25600)
    ->Complexity();
BENCHMARK(BM_RoundDenseSteady)->Arg(1600)->Arg(6400)->Arg(25600);
BENCHMARK(BM_RoundActiveSteady)->Arg(1600)->Arg(6400)->Arg(25600);
BENCHMARK(BM_ReplicaBatchRound)
    ->Args({1600, 1})
    ->Args({1600, 8})
    ->Args({6400, 8});
BENCHMARK(BM_PdSolve)
    ->Args({6400, 0})
    ->Args({6400, static_cast<long>(ThreadPool::hardwareChunks())});

BENCHMARK_MAIN();
