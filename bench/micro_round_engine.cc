/**
 * @file
 * Round-engine microbenchmarks: one synchronized DiBA round
 * (diffuse + local steps) under the three engine configurations
 * the scalability work introduced --
 *
 *   seed:      generic virtual-dispatch utility path, serial loop
 *              over std::vector<std::vector> adjacency semantics
 *              (enable_quad_fastpath = false, num_threads = 0);
 *   soa:       devirtualized quadratic struct-of-arrays fast path
 *              over the CSR overlay, still serial;
 *   parallel:  soa + the static-chunked ThreadPool with one chunk
 *              per hardware thread.
 *
 * plus the primal-dual best-response sweep reusing the same pool.
 * The serial/parallel DiBA rounds are bitwise-identical by
 * construction (see DESIGN.md "Round engine"), so these measure
 * the same computation.  Problems come from the shared cache so
 * harness re-entries never regenerate utilities inside setup.
 */

#include <benchmark/benchmark.h>

#include "alloc/diba.hh"
#include "alloc/primal_dual.hh"
#include "bench/common.hh"
#include "util/thread_pool.hh"

using namespace dpc;

namespace {

constexpr double kWattsPerNode = 172.0;
constexpr std::uint64_t kSeed = 23;

DibaAllocator::Config
engineConfig(bool soa, std::size_t threads)
{
    DibaAllocator::Config cfg;
    cfg.enable_quad_fastpath = soa;
    cfg.num_threads = threads;
    return cfg;
}

void
roundBench(benchmark::State &state, bool soa, std::size_t threads)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto &prob = bench::cachedNpbProblem(n, kWattsPerNode,
                                               kSeed);
    DibaAllocator diba(makeRing(n), engineConfig(soa, threads));
    diba.reset(prob);
    for (auto _ : state)
        benchmark::DoNotOptimize(diba.iterate());
    state.SetLabel(bench::problemLabel(n, kWattsPerNode, kSeed));
    state.counters["node_ns"] = benchmark::Counter(
        static_cast<double>(n),
        benchmark::Counter::kIsIterationInvariantRate |
            benchmark::Counter::kInvert);
    state.SetComplexityN(state.range(0));
}

void
BM_RoundSeedStyle(benchmark::State &state)
{
    roundBench(state, /*soa=*/false, /*threads=*/0);
}

void
BM_RoundSoa(benchmark::State &state)
{
    roundBench(state, /*soa=*/true, /*threads=*/0);
}

void
BM_RoundSoaParallel(benchmark::State &state)
{
    roundBench(state, /*soa=*/true, ThreadPool::hardwareChunks());
}

void
BM_PdSolve(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto &prob = bench::cachedNpbProblem(n, kWattsPerNode,
                                               kSeed);
    PrimalDualAllocator::Config cfg;
    cfg.num_threads = static_cast<std::size_t>(state.range(1));
    PrimalDualAllocator pd(cfg);
    for (auto _ : state) {
        auto res = pd.allocate(prob);
        benchmark::DoNotOptimize(res.utility);
    }
    state.SetLabel(bench::problemLabel(n, kWattsPerNode, kSeed));
}

} // namespace

BENCHMARK(BM_RoundSeedStyle)
    ->Arg(400)
    ->Arg(1600)
    ->Arg(6400)
    ->Arg(25600)
    ->Complexity();
BENCHMARK(BM_RoundSoa)
    ->Arg(400)
    ->Arg(1600)
    ->Arg(6400)
    ->Arg(25600)
    ->Complexity();
BENCHMARK(BM_RoundSoaParallel)
    ->Arg(400)
    ->Arg(1600)
    ->Arg(6400)
    ->Arg(25600)
    ->Complexity();
BENCHMARK(BM_PdSolve)
    ->Args({6400, 0})
    ->Args({6400, static_cast<long>(ThreadPool::hardwareChunks())});

BENCHMARK_MAIN();
