/**
 * @file
 * Fig. 4.3 reproduction: SNP of 1000 servers under total budgets
 * 166..186 kW for uniform allocation, the primal-dual scheme, DiBA
 * and the centralized optimum.  The paper reports PD/DiBA winning
 * by ~8-23% over uniform with the gap closing as the budget grows.
 */

#include "bench/common.hh"

using namespace dpc;

int
main()
{
    bench::banner("Figure 4.3",
                  "SNP of N=1000 servers vs. total power budget");

    const std::size_t n = 1000;
    Table table({"budget_kW", "uniform", "primal-dual", "diba",
                 "centralized-opt", "diba_gain_%"});

    double gain_lo = 0.0, gain_hi = 0.0;
    for (double wpn = 166.0; wpn <= 186.0 + 1e-9; wpn += 4.0) {
        const auto prob = bench::npbProblem(n, wpn, 17);
        const auto oracle = solveKkt(prob);

        UniformAllocator uniform;
        const auto r_uni = uniform.allocate(prob);

        PrimalDualAllocator pd;
        const auto r_pd = pd.allocate(prob);

        DibaAllocator diba(makeRing(n));
        const auto r_diba = diba.allocate(prob);

        const double s_uni = bench::snpOf(prob, r_uni.power);
        const double s_pd = bench::snpOf(prob, r_pd.power);
        const double s_diba = bench::snpOf(prob, r_diba.power);
        const double s_opt = bench::snpOf(prob, oracle.power);
        const double gain = (s_diba / s_uni - 1.0) * 100.0;
        if (wpn == 166.0)
            gain_lo = gain;
        gain_hi = gain;

        table.addRow({Table::num(wpn * n / 1000.0, 0),
                      Table::num(s_uni, 4), Table::num(s_pd, 4),
                      Table::num(s_diba, 4), Table::num(s_opt, 4),
                      Table::num(gain, 1)});
    }
    table.print(std::cout);
    std::cout << "\nPaper: DiBA within 99% of the centralized "
                 "optimum; gain over uniform shrinks from ~22.6% "
                 "to ~8.2% as the budget loosens.\n"
              << "Measured: gain shrinks from "
              << Table::num(gain_lo, 1) << "% to "
              << Table::num(gain_hi, 1) << "%.\n";
    return 0;
}
