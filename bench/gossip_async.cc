/**
 * @file
 * Asynchronous gossip at engine speed: scalar random-edge ticks
 * (gossipTick, one rng draw + two scattered node steps per edge)
 * vs. the batched matching sweep (gossipSweep: the live overlay
 * edge-colored into vertex-disjoint matchings, each matching run
 * through the block round kernel in compact SoA lanes).  Both
 * paths do identical per-edge algorithmic work -- one pairwise
 * estimate averaging plus two barrier-gradient steps -- so
 * ns_per_edge is directly comparable, and the sweep is bitwise
 * equal to a scalar replay of its schedule (see
 * tests/alloc/gossip_sweep_test.cc); this bench measures only the
 * engine cost.
 *
 * Grid: chordal rings, n in {6400, 25600, 102400}, engines
 * scalar / sweep (single-thread) / sweep_mt at threads in
 * {1, 2, 4, 8} (one row per thread count).  Every engine also
 * reports the allocation quality (util_frac_of_opt vs. the KKT
 * oracle) after a fixed number of sweep-equivalents, so a perf win
 * can never silently trade away convergence, and the measured
 * chunk locality of the overlay it actually streamed, so the
 * layout closed loop is gated end to end.
 *
 * Layout section (largest n): a bounded-span circulant overlay
 * (ring + chords to the 2nd/3rd/8th neighbour -- the rack-local
 * gossip overlay of a row of racks) with its vertex ids scrambled,
 * the adversarial placement a real deployment produces when server
 * ids arrive in rack-arbitrary order.  Swept once with
 * Config::layout=identity ("scrambled" rows) and once with
 * Config::layout=rcm ("rcm" rows): RCM recovers the band
 * structure, so at memory-bound sizes the same sweep touches
 * chunk-local lines instead of the whole SoA.  The random-chord
 * grid overlay above is deliberately NOT used here: random chords
 * make an expander, and no vertex order can localize an expander
 * -- the layout subsystem targets overlays that have locality to
 * recover.  The RCM sweep must beat the scrambled sweep by >= 1.3x
 * in ns_per_edge at n=102400 (the tentpole acceptance bar); its
 * speedup_x and locality land in BENCH_gossip_async.json where
 * bench_compare.py gates them against the committed baseline.
 *
 * Emits BENCH_gossip_async.json for the bench_compare gate (>15%
 * ns_per_edge, >1% quality, or locality regression fails); exits
 * non-zero if the single-thread sweep falls under 3x the scalar
 * path at n=25600 or the layout bar fails.
 *
 * DPC_BENCH_SMOKE=1 shrinks the grid to one small size and a
 * couple of trials -- the CI smoke mode (tools/ci.sh).
 */

#include <cstdlib>
#include <numeric>

#include "bench/common.hh"
#include "graph/reorder.hh"
#include "tools/bench_json.hh"

using namespace dpc;

namespace {

constexpr double kWattsPerNode = 172.0;
constexpr std::uint64_t kProblemSeed = 97;
constexpr std::uint64_t kTopoSeed = 7;
constexpr std::uint64_t kTimingSeed = 11;
constexpr std::uint64_t kQualitySeed = 5;
constexpr std::uint64_t kScrambleSeed = 23;
/** Chunk count of the locality probe: fixed (not tied to the
 * engine's thread count) so the field is comparable across rows
 * and meaningful even for the serial engines. */
constexpr std::size_t kLocalityChunks = 8;

struct EngineResult
{
    double ns_per_edge = 0.0;
    double util_frac = 0.0;
    double locality = 0.0;
    std::size_t edges_timed = 0;
};

Graph
topologyOf(std::size_t n)
{
    Rng rng(kTopoSeed);
    // Ring + n/4 random chords: sparse enough that per-edge cost
    // dominates, chordal enough for a handful of matchings.
    return makeChordalRing(n, n / 4, rng);
}

/** Bounded-span circulant: ring plus chords to the +2, +3 and +8
 * neighbours.  In natural order every edge spans <= 8 ids, so a
 * good layout can make nearly every sweep gather chunk-local. */
Graph
localChordOverlay(std::size_t n)
{
    Graph g(n);
    for (const std::size_t span : {1u, 2u, 3u, 8u})
        if (span < n)
            for (std::size_t v = 0; v < n; ++v)
                g.addEdge(v, (v + span) % n);
    return g;
}

/** Same overlay, adversarial vertex ids. */
Graph
scrambledOf(const Graph &g)
{
    Rng rng(kScrambleSeed);
    std::vector<std::uint32_t> shuf(g.numVertices());
    std::iota(shuf.begin(), shuf.end(), 0u);
    rng.shuffle(shuf);
    return g.relabeled(shuf);
}

/** Allocation quality after `sweeps` sweep-equivalents of async
 * gossip (scalar path runs E ticks per sweep-equivalent). */
double
qualityOf(DibaAllocator &diba, const AllocationProblem &prob,
          double opt_utility, std::size_t sweeps, bool scalar)
{
    diba.reset(prob);
    Rng rng(kQualitySeed);
    const std::size_t e = diba.liveEdges().size();
    for (std::size_t s = 0; s < sweeps; ++s) {
        if (scalar) {
            for (std::size_t t = 0; t < e; ++t)
                diba.gossipTick(rng);
        } else {
            diba.gossipSweep(rng);
        }
    }
    return totalUtility(prob.utilities, diba.power()) /
           opt_utility;
}

EngineResult
runEngine(const AllocationProblem &prob, const Graph &g,
          double opt_utility, bool scalar, std::size_t threads,
          Layout layout, std::size_t sweeps_timed,
          std::size_t sweeps_quality, std::size_t trials)
{
    DibaAllocator::Config cfg;
    cfg.num_threads = threads;
    cfg.layout = layout;
    DibaAllocator diba(g, cfg);
    diba.reset(prob);
    const std::size_t e = diba.liveEdges().size();

    Rng rng(kTimingSeed);
    bench::RoundTiming t;
    if (scalar) {
        t = bench::timeRounds(
            e, sweeps_timed * e, [&] { diba.gossipTick(rng); },
            trials);
    } else {
        t = bench::timeRounds(
            e, sweeps_timed, [&] { diba.gossipSweep(rng); },
            trials);
    }

    EngineResult res;
    // timeRounds reports ms per step() call; a scalar step is one
    // edge, a sweep step is all E live edges.
    res.ns_per_edge = scalar
                          ? 1e6 * t.ms_per_round
                          : 1e6 * t.ms_per_round /
                                static_cast<double>(e);
    res.edges_timed = t.rounds * (scalar ? 1 : e);
    res.locality = diba.chunkLocality(kLocalityChunks);
    res.util_frac =
        qualityOf(diba, prob, opt_utility, sweeps_quality, scalar);
    return res;
}

} // namespace

int
main()
{
    const bool smoke = std::getenv("DPC_BENCH_SMOKE") != nullptr;
    bench::banner(
        "Async gossip engine (scalar ticks vs batched sweeps)",
        smoke ? "smoke mode: n=1600, 2 trials"
              : "chordal rings, n in {6400, 25600, 102400}; "
                "best-of-N timing; quality after 24 "
                "sweep-equivalents; layout bar at n=102400");

    const std::vector<std::size_t> sizes =
        smoke ? std::vector<std::size_t>{1600}
              : std::vector<std::size_t>{6400, 25600, 102400};
    const std::size_t trials = smoke ? 2 : 25;
    const std::size_t sweeps_quality = smoke ? 6 : 24;

    Table table({"n", "edges", "engine", "threads", "layout",
                 "ns_per_edge", "speedup_x", "locality",
                 "util_frac_of_opt"});
    tools::BenchJsonWriter json;
    bool gate_ok = true;

    const auto emit = [&](std::size_t n, std::size_t e,
                          const char *engine, std::size_t threads,
                          const char *layout, const EngineResult &r,
                          double speedup) {
        table.addRow({Table::num((long long)n),
                      Table::num((long long)e),
                      std::string(engine),
                      Table::num((long long)threads),
                      std::string(layout),
                      Table::num(r.ns_per_edge, 1),
                      Table::num(speedup, 2),
                      Table::num(r.locality, 4),
                      Table::num(r.util_frac, 4)});
        json.record()
            .field("bench", "gossip_async")
            .field("engine", engine)
            .field("n", n)
            .field("threads", threads)
            .field("layout", layout)
            .field("ns_per_edge", r.ns_per_edge)
            .field("speedup_x", speedup)
            .field("locality", r.locality)
            .field("util_frac_of_opt", r.util_frac)
            .field("rounds", r.edges_timed)
            .field("peak_rss_mb", bench::peakRssMb());
    };

    for (const std::size_t n : sizes) {
        const auto prob =
            bench::npbProblem(n, kWattsPerNode, kProblemSeed);
        const Graph g = topologyOf(n);
        const double opt_utility = solveKkt(prob).utility;
        const std::size_t e = g.numEdges();
        // Equal timed work per trial across engines: a few full
        // sweeps' worth of edges, scaled up at small n so every
        // size's per-trial window is long enough that best-of-N
        // can dig through a transient load spike on the host.
        const std::size_t sweeps_timed =
            smoke ? 1
                  : std::max<std::size_t>(3, (3 * 25600) / n);

        struct Spec
        {
            const char *name;
            bool scalar;
            std::size_t threads;
        };
        // One sweep_mt row per thread count: the thread dimension
        // is part of the record identity, so bench_compare tracks
        // each width's ns_per_edge separately.
        const Spec specs[] = {
            {"scalar", true, 0},    {"sweep", false, 0},
            {"sweep_mt", false, 1}, {"sweep_mt", false, 2},
            {"sweep_mt", false, 4}, {"sweep_mt", false, 8},
        };
        double scalar_ns = 0.0;
        for (const Spec &s : specs) {
            const EngineResult r = runEngine(
                prob, g, opt_utility, s.scalar, s.threads,
                Layout::identity, sweeps_timed, sweeps_quality,
                trials);
            if (s.scalar)
                scalar_ns = r.ns_per_edge;
            const double speedup =
                s.scalar ? 1.0 : scalar_ns / r.ns_per_edge;
            emit(n, e, s.name, s.threads, "identity", r, speedup);
#if defined(DPC_AVX2)
            // The 3x acceptance bar is for the SIMD block kernel
            // (the build tools/ci.sh benches); the portable build
            // still prints every number but is not gated.
            if (!smoke && n == 25600 && !s.scalar &&
                s.threads == 0 && speedup < 3.0) {
                gate_ok = false;
                std::cout << "FAIL: single-thread sweep speedup "
                          << speedup << "x < 3x at n=25600\n";
            }
#endif
        }

        // Layout section (largest size only): scrambled ids, swept
        // with and without the RCM build-time relabeling.
        if (n != sizes.back())
            continue;
        const Graph bad = scrambledOf(localChordOverlay(n));
        const std::size_t be = bad.numEdges();
        const EngineResult scrambled = runEngine(
            prob, bad, opt_utility, false, 0, Layout::identity,
            sweeps_timed, sweeps_quality, trials);
        const EngineResult rcm = runEngine(
            prob, bad, opt_utility, false, 0, Layout::rcm,
            sweeps_timed, sweeps_quality, trials);
        const double layout_speedup =
            scrambled.ns_per_edge / rcm.ns_per_edge;
        emit(n, be, "sweep", 0, "scrambled", scrambled, 1.0);
        emit(n, be, "sweep", 0, "rcm", rcm, layout_speedup);
        if (!smoke && layout_speedup < 1.3) {
            gate_ok = false;
            std::cout << "FAIL: rcm layout sweep speedup "
                      << layout_speedup
                      << "x < 1.3x over scrambled at n=" << n
                      << "\n";
        }
    }

    table.print(std::cout);
    json.save("BENCH_gossip_async.json");
    std::cout << "\nPer-edge engine cost; sweep schedules are "
                 "bitwise replayable through gossipTickPair "
                 "(gossip_sweep_test) and layout-invariant "
                 "(diba_layout_test).  Results saved to "
                 "BENCH_gossip_async.json\n";
    return gate_ok ? 0 : 1;
}
