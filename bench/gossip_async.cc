/**
 * @file
 * Asynchronous gossip at engine speed: scalar random-edge ticks
 * (gossipTick, one rng draw + two scattered node steps per edge)
 * vs. the batched matching sweep (gossipSweep: the live overlay
 * edge-colored into vertex-disjoint matchings, each matching run
 * through the block round kernel in compact SoA lanes).  Both
 * paths do identical per-edge algorithmic work -- one pairwise
 * estimate averaging plus two barrier-gradient steps -- so
 * ns_per_edge is directly comparable, and the sweep is bitwise
 * equal to a scalar replay of its schedule (see
 * tests/alloc/gossip_sweep_test.cc); this bench measures only the
 * engine cost.
 *
 * Grid: chordal rings, n in {6400, 25600, 102400}, engines
 * scalar / sweep (single-thread) / sweep_mt (hardware chunks).
 * Every engine also reports the allocation quality
 * (util_frac_of_opt vs. the KKT oracle) after a fixed number of
 * sweep-equivalents, so a perf win can never silently trade away
 * convergence.  Emits BENCH_gossip_async.json for the
 * bench_compare gate (>15% ns_per_edge or >1% quality regression
 * fails); exits non-zero if the single-thread sweep falls under
 * 3x the scalar path at n=25600 (the tentpole acceptance bar).
 *
 * DPC_BENCH_SMOKE=1 shrinks the grid to one small size and a
 * couple of trials -- the CI smoke mode (tools/ci.sh).
 */

#include <cstdlib>

#include "bench/common.hh"
#include "tools/bench_json.hh"

using namespace dpc;

namespace {

constexpr double kWattsPerNode = 172.0;
constexpr std::uint64_t kProblemSeed = 97;
constexpr std::uint64_t kTopoSeed = 7;
constexpr std::uint64_t kTimingSeed = 11;
constexpr std::uint64_t kQualitySeed = 5;

struct EngineResult
{
    double ns_per_edge = 0.0;
    double util_frac = 0.0;
    std::size_t edges_timed = 0;
};

Graph
topologyOf(std::size_t n)
{
    Rng rng(kTopoSeed);
    // Ring + n/4 random chords: sparse enough that per-edge cost
    // dominates, chordal enough for a handful of matchings.
    return makeChordalRing(n, n / 4, rng);
}

/** Allocation quality after `sweeps` sweep-equivalents of async
 * gossip (scalar path runs E ticks per sweep-equivalent). */
double
qualityOf(DibaAllocator &diba, const AllocationProblem &prob,
          double opt_utility, std::size_t sweeps, bool scalar)
{
    diba.reset(prob);
    Rng rng(kQualitySeed);
    const std::size_t e = diba.liveEdges().size();
    for (std::size_t s = 0; s < sweeps; ++s) {
        if (scalar) {
            for (std::size_t t = 0; t < e; ++t)
                diba.gossipTick(rng);
        } else {
            diba.gossipSweep(rng);
        }
    }
    return totalUtility(prob.utilities, diba.power()) /
           opt_utility;
}

EngineResult
runEngine(const AllocationProblem &prob, const Graph &g,
          double opt_utility, bool scalar, std::size_t threads,
          std::size_t sweeps_timed, std::size_t sweeps_quality,
          std::size_t trials)
{
    DibaAllocator::Config cfg;
    cfg.num_threads = threads;
    DibaAllocator diba(g, cfg);
    diba.reset(prob);
    const std::size_t e = diba.liveEdges().size();

    Rng rng(kTimingSeed);
    bench::RoundTiming t;
    if (scalar) {
        t = bench::timeRounds(
            e, sweeps_timed * e, [&] { diba.gossipTick(rng); },
            trials);
    } else {
        t = bench::timeRounds(
            e, sweeps_timed, [&] { diba.gossipSweep(rng); },
            trials);
    }

    EngineResult res;
    // timeRounds reports ms per step() call; a scalar step is one
    // edge, a sweep step is all E live edges.
    res.ns_per_edge = scalar
                          ? 1e6 * t.ms_per_round
                          : 1e6 * t.ms_per_round /
                                static_cast<double>(e);
    res.edges_timed = t.rounds * (scalar ? 1 : e);
    res.util_frac =
        qualityOf(diba, prob, opt_utility, sweeps_quality, scalar);
    return res;
}

} // namespace

int
main()
{
    const bool smoke = std::getenv("DPC_BENCH_SMOKE") != nullptr;
    bench::banner(
        "Async gossip engine (scalar ticks vs batched sweeps)",
        smoke ? "smoke mode: n=1600, 2 trials"
              : "chordal rings, n in {6400, 25600, 102400}; "
                "best-of-N timing; quality after 24 "
                "sweep-equivalents");

    const std::vector<std::size_t> sizes =
        smoke ? std::vector<std::size_t>{1600}
              : std::vector<std::size_t>{6400, 25600, 102400};
    const std::size_t trials = smoke ? 2 : 25;
    const std::size_t sweeps_quality = smoke ? 6 : 24;
    const std::size_t mt_threads = ThreadPool::hardwareChunks();

    Table table({"n", "edges", "engine", "threads", "ns_per_edge",
                 "speedup_x", "util_frac_of_opt"});
    tools::BenchJsonWriter json;
    bool gate_ok = true;

    for (const std::size_t n : sizes) {
        const auto prob =
            bench::npbProblem(n, kWattsPerNode, kProblemSeed);
        const Graph g = topologyOf(n);
        const double opt_utility = solveKkt(prob).utility;
        const std::size_t e = g.numEdges();
        // Equal timed work per trial across engines: a few full
        // sweeps' worth of edges, scaled up at small n so every
        // size's per-trial window is long enough that best-of-N
        // can dig through a transient load spike on the host.
        const std::size_t sweeps_timed =
            smoke ? 1
                  : std::max<std::size_t>(3, (3 * 25600) / n);

        struct Spec
        {
            const char *name;
            bool scalar;
            std::size_t threads;
        };
        const Spec specs[] = {
            {"scalar", true, 0},
            {"sweep", false, 0},
            {"sweep_mt", false, mt_threads},
        };
        double scalar_ns = 0.0;
        for (const Spec &s : specs) {
            const EngineResult r =
                runEngine(prob, g, opt_utility, s.scalar,
                          s.threads, sweeps_timed, sweeps_quality,
                          trials);
            if (s.scalar)
                scalar_ns = r.ns_per_edge;
            const double speedup =
                s.scalar ? 1.0 : scalar_ns / r.ns_per_edge;
            table.addRow({Table::num((long long)n),
                          Table::num((long long)e),
                          std::string(s.name),
                          Table::num((long long)s.threads),
                          Table::num(r.ns_per_edge, 1),
                          Table::num(speedup, 2),
                          Table::num(r.util_frac, 4)});
            json.record()
                .field("bench", "gossip_async")
                .field("engine", s.name)
                .field("n", n)
                .field("threads", s.threads)
                .field("ns_per_edge", r.ns_per_edge)
                .field("speedup_x", speedup)
                .field("util_frac_of_opt", r.util_frac)
                .field("rounds", r.edges_timed)
                .field("peak_rss_mb", bench::peakRssMb());
#if defined(DPC_AVX2)
            // The 3x acceptance bar is for the SIMD block kernel
            // (the build tools/ci.sh benches); the portable build
            // still prints every number but is not gated.
            if (!smoke && n == 25600 && !s.scalar &&
                s.threads == 0 && speedup < 3.0) {
                gate_ok = false;
                std::cout << "FAIL: single-thread sweep speedup "
                          << speedup << "x < 3x at n=25600\n";
            }
#endif
        }
    }

    table.print(std::cout);
    json.save("BENCH_gossip_async.json");
    std::cout << "\nPer-edge engine cost; sweep schedules are "
                 "bitwise replayable through gossipTickPair "
                 "(gossip_sweep_test).  Results saved to "
                 "BENCH_gossip_async.json\n";
    return gate_ok ? 0 : 1;
}
