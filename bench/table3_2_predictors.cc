/**
 * @file
 * Table 3.2 reproduction: mean absolute throughput-prediction
 * error of the six predictor families, trained on one synthetic
 * characterization database and evaluated on a disjoint one.  The
 * shape to match: the proposed quadratic-LLC+TP model wins, the
 * fixed global shapes of prior work [64, 27] trail badly.
 */

#include <iostream>

#include "model/predictors.hh"
#include "util/table.hh"

using namespace dpc;

int
main()
{
    std::cout << "\n=== Table 3.2 ===\n"
              << "Throughput prediction error by model family\n\n";

    Rng train_rng(101);
    const auto train = makeCharacterizationSet(400, train_rng);
    Rng test_rng(202);
    const auto test = makeCharacterizationSet(200, test_rng);

    // Paper-reported errors for side-by-side comparison.
    const double paper[] = {1.37, 2.13, 2.45, 2.73, 4.29, 6.11};

    Table table({"prediction method", "measured error %",
                 "paper error %"});
    auto preds = makeAllPredictors();
    for (std::size_t i = 0; i < preds.size(); ++i) {
        preds[i]->train(train);
        const double err = evaluatePredictor(*preds[i], test);
        table.addRow({preds[i]->name(),
                      Table::num(err * 100.0, 2),
                      Table::num(paper[i], 2)});
    }
    table.print(std::cout);
    std::cout << "\nShape to match: monotone ordering with "
                 "quadratic-LLC+TP best and previous-linear "
                 "worst.\n";
    return 0;
}
